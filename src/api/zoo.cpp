#include "api/zoo.h"

#include <cstdio>
#include <map>
#include <mutex>
#include <stdexcept>
#include <tuple>

#include "api/registry.h"
#include "core/env.h"
#include "core/parallel.h"
#include "core/table.h"
#include "data/shapes.h"
#include "data/source.h"
#include "data/store.h"
#include "kernels/backend.h"

namespace ber::zoo {

namespace {

// One source of truth for tag -> dataset preset: the api registry (inline
// spec models and zoo models must agree on what "c10" means).
SyntheticConfig data_config(const std::string& tag) {
  return api::dataset_by_name(tag);
}

ModelConfig model_for(const std::string& tag) {
  ModelConfig mc;
  const SyntheticConfig dc = data_config(tag);
  mc.in_channels = dc.channels;
  mc.image_size = dc.image_size;
  mc.num_classes = dc.num_classes;
  return mc;
}

TrainConfig base_train(const std::string& tag) {
  TrainConfig tc;
  tc.batch_size = 50;
  tc.lr_warmup_epochs = 3;  // the small GN CNNs need it (see DESIGN.md)
  if (tag == "mnist") {
    tc.epochs = fast_mode() ? 3 : 12;
    tc.lr_warmup_epochs = 2;
  } else {
    tc.epochs = fast_mode() ? 4 : 25;
  }
  if (tag == "c100") tc.bit_error_loss_threshold = 3.0f;
  return tc;
}

// Shorthand builders for the spec table.
Spec make(const std::string& name, const std::string& tag, Method method,
          QuantScheme quant, float wmax, double p_train,
          const std::string& label) {
  Spec s;
  s.name = name;
  s.dataset = tag;
  s.model = model_for(tag);
  s.train_cfg = base_train(tag);
  s.train_cfg.method = method;
  s.train_cfg.quant = quant;
  s.train_cfg.wmax = wmax;
  s.train_cfg.p_train = p_train;
  if (quant.bits <= 4) {
    // Low-precision QAT needs a gentler schedule at this model scale.
    s.train_cfg.sgd.lr = 0.03f;
    s.train_cfg.lr_warmup_epochs = 6;
  }
  s.label = label;
  return s;
}

std::vector<Spec> build_specs() {
  std::vector<Spec> v;
  const QuantScheme rq8 = QuantScheme::rquant(8);
  const QuantScheme rq4 = QuantScheme::rquant(4);

  // --- Tab. 1 quantization-scheme ablation (each scheme trained with QAT).
  v.push_back(make("c10_global", "c10", Method::kNormal,
                   QuantScheme::global_symmetric(8), 0, 0, "Eq.(1), global"));
  v.push_back(make("c10_normal", "c10", Method::kNormal, QuantScheme::normal(8),
                   0, 0, "Eq.(1), per-layer (=Normal)"));
  v.push_back(make("c10_asym_signed", "c10", Method::kNormal,
                   QuantScheme{8, RangeScope::kPerTensor, true, false, false},
                   0, 0, "+asymmetric"));
  v.push_back(make("c10_asym_unsigned", "c10", Method::kNormal,
                   QuantScheme{8, RangeScope::kPerTensor, true, true, false},
                   0, 0, "+unsigned"));
  v.push_back(make("c10_rquant", "c10", Method::kNormal, rq8, 0, 0,
                   "+rounding (=RQuant)"));
  v.push_back(make("c10_clip015_m4_trunc", "c10", Method::kClipping,
                   QuantScheme::rquant_trunc(4), 0.15f, 0,
                   "4-bit w/o rounding*"));
  v.push_back(make("c10_clip015_m4", "c10", Method::kClipping, rq4, 0.15f, 0,
                   "4-bit w/ rounding*"));

  // --- Tab. 2 / Fig. 2/6/7 clipping sweep (+ label smoothing controls).
  // The wmax grid is shifted up vs the paper's {0.15..0.025}: our scaled-down
  // nets have a 48-wide head, so their natural weight scale is larger; the
  // sweep spans the same regimes (harmless -> effective -> too aggressive).
  for (float wmax : {0.3f, 0.2f, 0.15f, 0.1f}) {
    Spec s = make("c10_clip" + std::to_string(static_cast<int>(wmax * 1000)),
                  "c10", Method::kClipping, rq8, wmax, 0,
                  "Clipping_" + TablePrinter::fmt(wmax, 2));
    v.push_back(std::move(s));
  }
  for (float wmax : {0.2f, 0.15f}) {
    Spec s = make(
        "c10_clip" + std::to_string(static_cast<int>(wmax * 1000)) + "_ls",
        "c10", Method::kClipping, rq8, wmax, 0,
        "Clipping_" + TablePrinter::fmt(wmax, 2) + "+LS");
    s.train_cfg.label_smoothing = 0.1f;
    v.push_back(std::move(s));
  }

  // --- Tab. 4 / Fig. 2/7 RandBET.
  v.push_back(make("c10_randbet015_p1", "c10", Method::kRandBET, rq8, 0.15f,
                   0.01, "RandBET_0.15 p=1"));
  v.push_back(make("c10_randbet01_p15", "c10", Method::kRandBET, rq8, 0.1f,
                   0.015, "RandBET_0.1 p=1.5"));
  v.push_back(make("c10_randbet_noclip_p1", "c10", Method::kRandBET, rq8, 0,
                   0.01, "RandBET w/o clipping p=1"));
  v.push_back(make("c10_randbet015_p1_m4", "c10", Method::kRandBET, rq4, 0.15f,
                   0.01, "RandBET_0.15 p=1 (4-bit)"));

  // --- Tab. 3 PattBET (fixed-pattern training).
  v.push_back(make("c10_pattbet_p25", "c10", Method::kPattBET, rq8, 0, 0.025,
                   "PattBET p=2.5"));
  v.push_back(make("c10_pattbet015_p25", "c10", Method::kPattBET, rq8, 0.15f,
                   0.025, "PattBET_0.15 p=2.5"));

  // --- Tab. 10 BatchNorm comparison.
  {
    Spec s = make("c10_rquant_bn", "c10", Method::kNormal, rq8, 0, 0,
                  "BN RQuant");
    s.model.norm = NormKind::kBatchNorm;
    v.push_back(std::move(s));
    Spec c = make("c10_clip015_bn", "c10", Method::kClipping, rq8, 0.15f, 0,
                  "BN Clipping_0.15");
    c.model.norm = NormKind::kBatchNorm;
    v.push_back(std::move(c));
  }

  // --- Tab. 14 ResNet.
  for (const auto& [suffix, method, wmax, p, label] :
       std::vector<std::tuple<std::string, Method, float, double, std::string>>{
           {"rquant", Method::kNormal, 0.0f, 0.0, "ResNet RQuant"},
           {"clip015", Method::kClipping, 0.15f, 0.0, "ResNet Clipping_0.15"},
           {"randbet015_p1", Method::kRandBET, 0.15f, 0.01,
            "ResNet RandBET_0.15 p=1"}}) {
    Spec s = make("c10_resnet_" + suffix, "c10", method, rq8, wmax, p, label);
    s.model.arch = Arch::kResNetSmall;
    v.push_back(std::move(s));
  }

  // --- Tab. 9 post-training quantization (no QAT).
  {
    Spec s = make("c10_noqat", "c10", Method::kNormal, rq8, 0, 0,
                  "RQuant (post-train)");
    s.train_cfg.quant_aware = false;
    v.push_back(std::move(s));
    Spec c = make("c10_noqat_clip015", "c10", Method::kClipping, rq8, 0.15f, 0,
                  "Clipping_0.15 (post-train)");
    c.train_cfg.quant_aware = false;
    v.push_back(std::move(c));
  }

  // --- Tab. 12 symmetric quantization.
  v.push_back(make("c10_clip015_sym", "c10", Method::kClipping,
                   QuantScheme::symmetric_rounded(8), 0.15f, 0,
                   "Clipping_0.15 (sym)"));
  v.push_back(make("c10_randbet015_p1_sym", "c10", Method::kRandBET,
                   QuantScheme::symmetric_rounded(8), 0.15f, 0.01,
                   "RandBET_0.15 p=1 (sym)"));

  // --- Tab. 13 RandBET variants.
  {
    Spec s = make("c10_randbet015_p1_curr", "c10", Method::kRandBET, rq8,
                  0.15f, 0.01, "Curr. RandBET_0.15 p=1");
    s.train_cfg.curricular = true;
    v.push_back(std::move(s));
    Spec a = make("c10_randbet015_p1_alt", "c10", Method::kRandBET, rq8, 0.15f,
                  0.01, "Alt. RandBET_0.15 p=1");
    a.train_cfg.alternating = true;
    v.push_back(std::move(a));
  }

  // --- MNIST-analog (Fig. 7 / Tab. 21): much higher tolerable rates.
  v.push_back(make("mnist_rquant", "mnist", Method::kNormal, rq8, 0, 0,
                   "RQuant"));
  v.push_back(make("mnist_clip01", "mnist", Method::kClipping, rq8, 0.1f, 0,
                   "Clipping_0.1"));
  v.push_back(make("mnist_randbet01_p5", "mnist", Method::kRandBET, rq8, 0.1f,
                   0.05, "RandBET_0.1 p=5"));
  v.push_back(make("mnist_randbet01_p10", "mnist", Method::kRandBET, rq8,
                   0.1f, 0.10, "RandBET_0.1 p=10"));
  v.push_back(make("mnist_randbet01_p5_m2", "mnist", Method::kRandBET,
                   QuantScheme::rquant(2), 0.1f, 0.05,
                   "RandBET_0.1 p=5 (2-bit)"));

  // --- CIFAR100-analog (Fig. 7 / Tab. 20).
  v.push_back(make("c100_rquant", "c100", Method::kNormal, rq8, 0, 0,
                   "RQuant"));
  v.push_back(make("c100_clip015", "c100", Method::kClipping, rq8, 0.15f, 0,
                   "Clipping_0.15"));
  v.push_back(make("c100_randbet015_p05", "c100", Method::kRandBET, rq8,
                   0.15f, 0.005, "RandBET_0.15 p=0.5"));
  return v;
}

std::mutex& zoo_mutex() {
  static std::mutex m;
  return m;
}

// Zoo datasets live in the process-wide data::dataset_store() under the
// same canonical keys the Runner uses, so "zoo c10" and an inline spec
// model on the c10 preset share one materialization.
const Dataset& dataset(const std::string& key) {
  const std::string tag = key.substr(0, key.find('/'));
  const std::string split = key.substr(key.find('/') + 1);
  data::SourceSpec src;
  src.synthetic = data_config(tag);
  if (split == "rerr") {
    // Derived from test — materialize the parent first (store builders must
    // not recurse into the store).
    const Dataset& test = dataset(tag + "/test");
    const long n = fast_mode() ? 200 : 500;
    return data::dataset_store().get(
        data::dataset_key(src, "test") + "/head" + std::to_string(n),
        [&] { return test.head(n); });
  }
  return data::dataset_store().get(
      data::dataset_key(src, split),
      [&] { return data::load_split(src, split == "train"); });
}

std::string artifact_path(const Spec& s) {
  return artifacts_dir() + "/" + s.name + ".model";
}

// Trains the spec and writes the checkpoint (no memoization). Pinned to the
// reference backend: cached artifacts must be identical no matter which
// backend the surrounding process runs, or the zoo cache would silently mix
// training histories.
void train_to_disk(const Spec& s) {
  const kernels::ScopedBackend backend_guard(kernels::backend("reference"));
  auto model = build_model(s.model);
  const TrainStats stats =
      train(*model, train_set(s.dataset), test_set(s.dataset), s.train_cfg);
  ensure_dir(artifacts_dir());
  model->save(artifact_path(s));
  std::fprintf(stderr, "[zoo] trained %-28s Err %.2f%%\n", s.name.c_str(),
               100.0 * stats.final_test_err);
}

}  // namespace

const std::vector<Spec>& all_specs() {
  static const std::vector<Spec> specs = build_specs();
  return specs;
}

const Spec& spec(const std::string& name) {
  for (const Spec& s : all_specs()) {
    if (s.name == name) return s;
  }
  throw std::invalid_argument("zoo: unknown model " + name);
}

const Dataset& train_set(const std::string& tag) { return dataset(tag + "/train"); }
const Dataset& test_set(const std::string& tag) { return dataset(tag + "/test"); }
const Dataset& rerr_set(const std::string& tag) { return dataset(tag + "/rerr"); }

int default_chips() { return fast_mode() ? 2 : 5; }

const QuantScheme& scheme_of(const std::string& name) {
  return spec(name).train_cfg.quant;
}

Sequential& get(const std::string& name) {
  static std::map<std::string, std::unique_ptr<Sequential>> cache;
  {
    std::lock_guard<std::mutex> lock(zoo_mutex());
    auto it = cache.find(name);
    if (it != cache.end()) return *it->second;
  }
  const Spec& s = spec(name);
  if (!file_exists(artifact_path(s))) train_to_disk(s);
  auto model = build_model(s.model);
  model->load(artifact_path(s));
  std::lock_guard<std::mutex> lock(zoo_mutex());
  auto [it, inserted] = cache.emplace(name, std::move(model));
  return *it->second;
}

void ensure(const std::vector<std::string>& names) {
  // Datasets must exist before parallel training (dataset() locks).
  std::vector<const Spec*> missing;
  for (const auto& n : names) {
    const Spec& s = spec(n);
    train_set(s.dataset);
    test_set(s.dataset);
    if (!file_exists(artifact_path(s))) missing.push_back(&s);
  }
  if (missing.empty()) return;
  parallel_for(static_cast<std::int64_t>(missing.size()), 2,
               [&](std::int64_t i) { train_to_disk(*missing[i]); });
}

}  // namespace ber::zoo
