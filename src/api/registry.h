// String-keyed component registries for the declarative experiment API.
//
// Mirrors the kernel-backend registry (kernels/backend.h): every component a
// spec file can name — fault models, architectures, norms, datasets,
// quantization schemes, training methods — is constructible by name plus a
// JSON parameter map, so new scenarios are DECLARED (a config file, or a
// fluent api::Experiment) instead of compiled into another bespoke binary.
//
// Unknown names throw std::invalid_argument listing the known names; unknown
// parameter keys throw with the offending key and the accepted ones (see
// ParamReader) — spec typos fail loudly with an actionable message instead
// of silently running a default scenario.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/json.h"
#include "data/dataset.h"
#include "data/shapes.h"
#include "faults/fault_model.h"
#include "models/factory.h"
#include "nn/sequential.h"
#include "quant/quantizer.h"
#include "train/trainer.h"

namespace ber {
class ProfiledChip;
}

namespace ber::api {

// ---------------------------------------------------------------- Registry --

// Generic name -> factory registry. R is the constructed type, Args the
// factory inputs (e.g. the JSON parameter map and a construction context).
template <typename Signature>
class Registry;

template <typename R, typename... Args>
class Registry<R(Args...)> {
 public:
  using Factory = std::function<R(Args...)>;

  explicit Registry(std::string what) : what_(std::move(what)) {}

  void add(const std::string& name, Factory factory) {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [known, f] : entries_) {
      if (known == name) {
        throw std::invalid_argument(what_ + " registry: duplicate name \"" +
                                    name + "\"");
      }
    }
    entries_.emplace_back(name, std::move(factory));
  }

  bool contains(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [known, f] : entries_) {
      if (known == name) return true;
    }
    return false;
  }

  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto& [name, f] : entries_) out.push_back(name);
    return out;
  }

  R make(const std::string& name, Args... args) const {
    Factory factory;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (const auto& [known, f] : entries_) {
        if (known == name) { factory = f; break; }
      }
    }
    if (!factory) {
      std::string msg = "unknown " + what_ + " \"" + name + "\" (known:";
      for (const std::string& n : names()) msg += " " + n;
      throw std::invalid_argument(msg + ")");
    }
    return factory(std::forward<Args>(args)...);
  }

 private:
  std::string what_;
  mutable std::mutex mu_;
  std::vector<std::pair<std::string, Factory>> entries_;
};

// -------------------------------------------------------------- ParamReader --

// Checked reader over a JSON parameter object: typed getters with defaults,
// and finish() rejects keys nobody consumed ("fault 'random': unknown key
// 'pp' (known: p, flip_fraction, ...)"). Every registry factory and spec
// section parser funnels its JSON through one of these.
class ParamReader {
 public:
  // `where` labels error messages (e.g. "fault \"random\""). `params` must
  // be an object (or null, treated as empty); other types throw.
  ParamReader(std::string where, const Json& params);

  bool has(const std::string& key) const;
  double number(const std::string& key, double fallback);
  double require_number(const std::string& key);
  long integer(const std::string& key, long fallback);
  bool boolean(const std::string& key, bool fallback);
  std::string str(const std::string& key, const std::string& fallback);
  std::string require_str(const std::string& key);
  // Array of numbers; missing key -> empty.
  std::vector<double> numbers(const std::string& key);
  // Raw subobject (missing -> null Json); marks the key consumed.
  const Json& raw(const std::string& key);

  // Throws std::invalid_argument on the first unconsumed key.
  void finish() const;

  [[noreturn]] void fail(const std::string& why) const;

 private:
  const Json* get(const std::string& key);

  std::string where_;
  const Json& params_;
  std::vector<std::string> consumed_;
  static const Json kNull;
};

// ------------------------------------------------------------ fault models --

// Construction context for fault-model factories. Everything is optional;
// factories that need a field throw an actionable error when it is missing
// (e.g. "adversarial" needs model/scheme/attack_set to mount the attack).
struct FaultContext {
  Sequential* model = nullptr;          // the network under evaluation
  const QuantScheme* scheme = nullptr;  // its deployment scheme
  const NetSnapshot* layout = nullptr;  // quantized layout (flip validation)
  const Dataset* attack_set = nullptr;  // gradient source for attacks
  const ProfiledChip* chip = nullptr;   // preprofiled chip to reuse, if any
  int n_trials = 0;                     // trials the evaluator will run
};

using FaultModelRegistry =
    Registry<std::unique_ptr<FaultModel>(const Json&, const FaultContext&)>;

// The process-wide fault-model registry, preloaded with the five built-ins:
//   random      — RandomBitErrorModel   (p, flip/set1/set0 fractions, seed_base)
//   profiled    — ProfiledChipModel     (chip preset or geometry, voltage, seed)
//   ecc         — EccProtectedModel     (p, seed_base, persistent composition)
//   linf        — LinfNoiseModel        (rel_eps, seed_base)
//   adversarial — AdversarialBitErrorModel via BitFlipAttacker (budget,
//                 rounds, schedule, ...; control=true for the budget-matched
//                 random-flip control)
FaultModelRegistry& fault_models();

// Convenience: fault_models().make(name, params, ctx).
std::unique_ptr<FaultModel> make_fault_model(const std::string& name,
                                             const Json& params,
                                             const FaultContext& ctx);

// --------------------------------------------------- name <-> enum mappings --

// Each throws std::invalid_argument listing the known names on a miss.
Arch arch_by_name(const std::string& name);         // simplenet | resnet | mlp
NormKind norm_by_name(const std::string& name);     // groupnorm | batchnorm | none
Method method_by_name(const std::string& name);     // normal | clipping | randbet | pattbet
SyntheticConfig dataset_by_name(const std::string& name);  // c10 | mnist | c100
// Base scheme by name: normal | rquant | global_symmetric | rquant_trunc |
// symmetric_rounded (bit width applied by the caller).
QuantScheme quant_scheme_by_name(const std::string& name, int bits);

// The accepted names, for tooling (`ber_run --list`) — the single source of
// truth the *_by_name mappings accept.
const std::vector<std::string>& arch_names();
const std::vector<std::string>& norm_names();
const std::vector<std::string>& method_names();
const std::vector<std::string>& dataset_names();
const std::vector<std::string>& quant_scheme_names();

const char* arch_to_name(Arch arch);
const char* norm_to_name(NormKind norm);
const char* method_to_name(Method method);
const char* quant_scheme_to_name(const QuantScheme& scheme);  // "" if unnamed

// Parses a full quant section: {"scheme": "rquant", "bits": 8} with optional
// explicit axis overrides ("scope", "asymmetric", "unsigned", "rounded").
QuantScheme quant_from_json(const Json& params, const std::string& where);
Json quant_to_json(const QuantScheme& scheme);

}  // namespace ber::api
