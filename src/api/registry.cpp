#include "api/registry.h"

#include <stdexcept>

#include "attack/attacker.h"
#include "biterror/profiled_chip.h"
#include "faults/adversarial_model.h"
#include "faults/ecc_protected_model.h"
#include "faults/linf_noise_model.h"
#include "faults/profiled_chip_model.h"
#include "faults/random_bit_error_model.h"

namespace ber::api {

// -------------------------------------------------------------- ParamReader --

const Json ParamReader::kNull;

ParamReader::ParamReader(std::string where, const Json& params)
    : where_(std::move(where)), params_(params) {
  if (!params_.is_object() && !params_.is_null()) {
    fail("parameters must be a JSON object, got " + params_.dump());
  }
}

void ParamReader::fail(const std::string& why) const {
  throw std::invalid_argument(where_ + ": " + why);
}

const Json* ParamReader::get(const std::string& key) {
  if (params_.is_null()) return nullptr;
  consumed_.push_back(key);
  return params_.find(key);
}

bool ParamReader::has(const std::string& key) const {
  return !params_.is_null() && params_.contains(key);
}

double ParamReader::number(const std::string& key, double fallback) {
  const Json* v = get(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) fail("\"" + key + "\" must be a number, got " + v->dump());
  return v->as_number();
}

double ParamReader::require_number(const std::string& key) {
  if (!has(key)) fail("missing required key \"" + key + "\"");
  return number(key, 0.0);
}

long ParamReader::integer(const std::string& key, long fallback) {
  const Json* v = get(key);
  if (v == nullptr) return fallback;
  if (!v->is_number()) fail("\"" + key + "\" must be an integer, got " + v->dump());
  try {
    return v->as_int();
  } catch (const JsonError&) {
    fail("\"" + key + "\" must be an integer, got " + v->dump());
  }
}

bool ParamReader::boolean(const std::string& key, bool fallback) {
  const Json* v = get(key);
  if (v == nullptr) return fallback;
  if (!v->is_bool()) fail("\"" + key + "\" must be a bool, got " + v->dump());
  return v->as_bool();
}

std::string ParamReader::str(const std::string& key,
                             const std::string& fallback) {
  const Json* v = get(key);
  if (v == nullptr) return fallback;
  if (!v->is_string()) fail("\"" + key + "\" must be a string, got " + v->dump());
  return v->as_string();
}

std::string ParamReader::require_str(const std::string& key) {
  if (!has(key)) fail("missing required key \"" + key + "\"");
  return str(key, "");
}

std::vector<double> ParamReader::numbers(const std::string& key) {
  const Json* v = get(key);
  if (v == nullptr) return {};
  if (!v->is_array()) fail("\"" + key + "\" must be an array of numbers");
  std::vector<double> out;
  out.reserve(v->size());
  for (const Json& item : v->items()) {
    if (!item.is_number()) {
      fail("\"" + key + "\" must contain only numbers, got " + item.dump());
    }
    out.push_back(item.as_number());
  }
  return out;
}

const Json& ParamReader::raw(const std::string& key) {
  const Json* v = get(key);
  return v == nullptr ? kNull : *v;
}

void ParamReader::finish() const {
  if (params_.is_null()) return;
  for (const auto& [key, value] : params_.members()) {
    bool known = false;
    for (const std::string& c : consumed_) {
      if (c == key) { known = true; break; }
    }
    if (!known) {
      std::string msg = "unknown key \"" + key + "\" (known:";
      for (std::size_t i = 0; i < consumed_.size(); ++i) {
        msg += (i ? ", " : " ") + consumed_[i];
      }
      fail(msg + ")");
    }
  }
}

// ------------------------------------------------------------ fault models --

namespace {

BitErrorConfig bit_error_config_from(ParamReader& p) {
  BitErrorConfig cfg;
  cfg.p = p.require_number("p");
  cfg.flip_fraction = p.number("flip_fraction", cfg.flip_fraction);
  cfg.set1_fraction = p.number("set1_fraction", cfg.set1_fraction);
  cfg.set0_fraction = p.number("set0_fraction", cfg.set0_fraction);
  return cfg;
}

std::unique_ptr<FaultModel> make_random(const Json& params,
                                        const FaultContext&) {
  ParamReader p("fault \"random\"", params);
  const BitErrorConfig cfg = bit_error_config_from(p);
  const auto seed_base =
      static_cast<std::uint64_t>(p.integer("seed_base", 1000));
  p.finish();
  try {
    return std::make_unique<RandomBitErrorModel>(cfg, seed_base);
  } catch (const std::invalid_argument& e) {
    p.fail(e.what());
  }
}

std::unique_ptr<FaultModel> make_profiled(const Json& params,
                                          const FaultContext& ctx) {
  ParamReader p("fault \"profiled\"", params);
  const double v = p.require_number("voltage");
  if (ctx.chip != nullptr) {
    // Adapter path: reuse the caller's (large, already-built) profiled map.
    p.finish();
    return std::make_unique<ProfiledChipModel>(*ctx.chip, v);
  }
  const std::string preset = p.str("chip", "chip1");
  ProfiledChipConfig cfg;
  if (preset == "chip1") cfg = ProfiledChipConfig::chip1();
  else if (preset == "chip2") cfg = ProfiledChipConfig::chip2();
  else if (preset == "chip3") cfg = ProfiledChipConfig::chip3();
  else p.fail("unknown chip preset \"" + preset +
              "\" (known: chip1, chip2, chip3)");
  if (p.has("seed")) {
    cfg.seed = static_cast<std::uint64_t>(p.integer("seed", 0));
  }
  cfg.rows = p.integer("rows", cfg.rows);
  cfg.cols = p.integer("cols", cfg.cols);
  cfg.vulnerable_column_fraction =
      p.number("vulnerable_column_fraction", cfg.vulnerable_column_fraction);
  cfg.column_boost = p.number("column_boost", cfg.column_boost);
  p.finish();
  return std::make_unique<ProfiledChipModel>(cfg, v);
}

std::unique_ptr<FaultModel> make_ecc(const Json& params, const FaultContext&) {
  ParamReader p("fault \"ecc\"", params);
  const double rate = p.require_number("p");
  const bool persistent = p.boolean("persistent", false);
  const auto seed_base =
      static_cast<std::uint64_t>(p.integer("seed_base", 7777));
  const auto inner_seed =
      static_cast<std::uint64_t>(p.integer("inner_seed_base", 1000));
  p.finish();
  if (persistent) {
    // Monotone hash-addressed faults reaching data AND check bits: SECDED
    // composed with the Sec. 3 random model through its codeword hooks.
    BitErrorConfig cfg;
    cfg.p = rate;
    return std::make_unique<EccProtectedModel>(
        std::make_unique<RandomBitErrorModel>(cfg, inner_seed));
  }
  return std::make_unique<EccProtectedModel>(rate, seed_base);
}

std::unique_ptr<FaultModel> make_linf(const Json& params, const FaultContext&) {
  ParamReader p("fault \"linf\"", params);
  const double rel_eps = p.require_number("rel_eps");
  const auto seed_base =
      static_cast<std::uint64_t>(p.integer("seed_base", 2000));
  p.finish();
  if (rel_eps < 0.0) p.fail("\"rel_eps\" must be >= 0");
  return std::make_unique<LinfNoiseModel>(rel_eps, seed_base);
}

std::unique_ptr<FaultModel> make_adversarial(const Json& params,
                                             const FaultContext& ctx) {
  ParamReader p("fault \"adversarial\"", params);
  const long budget = p.integer("budget", 32);
  const bool control = p.boolean("control", false);
  const int trials = static_cast<int>(p.integer("trials", ctx.n_trials));
  if (trials < 1) {
    p.fail("\"trials\" must be >= 1 (or run through an evaluator that sets "
           "the trial count)");
  }
  if (ctx.layout == nullptr) {
    p.fail("needs a quantized snapshot layout (construct through the "
           "Runner / metrics adapters, which pass a FaultContext)");
  }
  if (control) {
    const auto seed_base =
        static_cast<std::uint64_t>(p.integer("seed_base", 3000));
    // Consume (and ignore) the attack-shaping keys so flipping a spec to
    // its budget-matched control is one edit, not five.
    (void)p.integer("rounds", 0);
    (void)p.str("schedule", "");
    (void)p.integer("attack_examples", 0);
    (void)p.integer("batch", 0);
    (void)p.integer("seed", 0);
    p.finish();
    return std::make_unique<AdversarialBitErrorModel>(random_flip_model(
        *ctx.layout, static_cast<std::size_t>(budget), trials, seed_base));
  }
  AttackConfig cfg;
  cfg.budget = static_cast<int>(budget);
  cfg.rounds = static_cast<int>(p.integer("rounds", cfg.rounds));
  const std::string schedule = p.str("schedule", "uniform");
  if (schedule == "uniform") cfg.schedule = BudgetSchedule::kUniform;
  else if (schedule == "geometric") cfg.schedule = BudgetSchedule::kGeometric;
  else p.fail("unknown schedule \"" + schedule +
              "\" (known: uniform, geometric)");
  cfg.attack_examples = p.integer("attack_examples", cfg.attack_examples);
  cfg.batch = p.integer("batch", cfg.batch);
  cfg.seed = static_cast<std::uint64_t>(p.integer("seed", 0));
  p.finish();
  if (ctx.model == nullptr || ctx.scheme == nullptr ||
      ctx.attack_set == nullptr) {
    p.fail("needs model + scheme + attack_set in the FaultContext to mount "
           "the gradient-guided attack");
  }
  try {
    cfg.validate();
  } catch (const std::invalid_argument& e) {
    p.fail(e.what());
  }
  BitFlipAttacker attacker(*ctx.model, *ctx.scheme, *ctx.attack_set, cfg);
  return std::make_unique<AdversarialBitErrorModel>(
      make_adversarial_model(attacker, *ctx.layout, trials));
}

}  // namespace

FaultModelRegistry& fault_models() {
  static FaultModelRegistry* registry = [] {
    auto* r = new FaultModelRegistry("fault model");
    r->add("random", make_random);
    r->add("profiled", make_profiled);
    r->add("ecc", make_ecc);
    r->add("linf", make_linf);
    r->add("adversarial", make_adversarial);
    return r;
  }();
  return *registry;
}

std::unique_ptr<FaultModel> make_fault_model(const std::string& name,
                                             const Json& params,
                                             const FaultContext& ctx) {
  return fault_models().make(name, params, ctx);
}

// --------------------------------------------------- name <-> enum mappings --

namespace {

[[noreturn]] void unknown(const std::string& what, const std::string& name,
                          const std::vector<std::string>& known) {
  std::string list;
  for (const std::string& n : known) list += (list.empty() ? "" : ", ") + n;
  throw std::invalid_argument("unknown " + what + " \"" + name +
                              "\" (known: " + list + ")");
}

}  // namespace

Arch arch_by_name(const std::string& name) {
  if (name == "simplenet") return Arch::kSimpleNet;
  if (name == "resnet") return Arch::kResNetSmall;
  if (name == "mlp") return Arch::kMlp;
  unknown("arch", name, arch_names());
}

NormKind norm_by_name(const std::string& name) {
  if (name == "groupnorm" || name == "gn") return NormKind::kGroupNorm;
  if (name == "batchnorm" || name == "bn") return NormKind::kBatchNorm;
  if (name == "none") return NormKind::kNone;
  unknown("norm", name, norm_names());
}

Method method_by_name(const std::string& name) {
  if (name == "normal") return Method::kNormal;
  if (name == "clipping") return Method::kClipping;
  if (name == "randbet") return Method::kRandBET;
  if (name == "pattbet") return Method::kPattBET;
  unknown("training method", name, method_names());
}

SyntheticConfig dataset_by_name(const std::string& name) {
  if (name == "c10") return SyntheticConfig::cifar10();
  if (name == "mnist") return SyntheticConfig::mnist();
  if (name == "c100") return SyntheticConfig::cifar100();
  unknown("dataset", name, dataset_names());
}

QuantScheme quant_scheme_by_name(const std::string& name, int bits) {
  if (name == "normal") return QuantScheme::normal(bits);
  if (name == "rquant") return QuantScheme::rquant(bits);
  if (name == "global_symmetric") return QuantScheme::global_symmetric(bits);
  if (name == "rquant_trunc") return QuantScheme::rquant_trunc(bits);
  if (name == "symmetric_rounded") return QuantScheme::symmetric_rounded(bits);
  unknown("quant scheme", name, quant_scheme_names());
}

const std::vector<std::string>& arch_names() {
  static const std::vector<std::string> names{"simplenet", "resnet", "mlp"};
  return names;
}

const std::vector<std::string>& norm_names() {
  static const std::vector<std::string> names{"groupnorm", "batchnorm",
                                              "none"};
  return names;
}

const std::vector<std::string>& method_names() {
  static const std::vector<std::string> names{"normal", "clipping", "randbet",
                                              "pattbet"};
  return names;
}

const std::vector<std::string>& dataset_names() {
  static const std::vector<std::string> names{"c10", "mnist", "c100"};
  return names;
}

const std::vector<std::string>& quant_scheme_names() {
  static const std::vector<std::string> names{
      "normal", "rquant", "global_symmetric", "rquant_trunc",
      "symmetric_rounded"};
  return names;
}

const char* arch_to_name(Arch arch) {
  switch (arch) {
    case Arch::kSimpleNet: return "simplenet";
    case Arch::kResNetSmall: return "resnet";
    case Arch::kMlp: return "mlp";
  }
  return "?";
}

const char* norm_to_name(NormKind norm) {
  switch (norm) {
    case NormKind::kGroupNorm: return "groupnorm";
    case NormKind::kBatchNorm: return "batchnorm";
    case NormKind::kNone: return "none";
  }
  return "?";
}

const char* method_to_name(Method method) {
  switch (method) {
    case Method::kNormal: return "normal";
    case Method::kClipping: return "clipping";
    case Method::kRandBET: return "randbet";
    case Method::kPattBET: return "pattbet";
  }
  return "?";
}

const char* quant_scheme_to_name(const QuantScheme& scheme) {
  const int bits = scheme.bits;
  if (scheme == QuantScheme::normal(bits)) return "normal";
  if (scheme == QuantScheme::rquant(bits)) return "rquant";
  if (scheme == QuantScheme::global_symmetric(bits)) return "global_symmetric";
  if (scheme == QuantScheme::rquant_trunc(bits)) return "rquant_trunc";
  if (scheme == QuantScheme::symmetric_rounded(bits)) return "symmetric_rounded";
  return "";
}

QuantScheme quant_from_json(const Json& params, const std::string& where) {
  ParamReader p(where, params);
  const int bits = static_cast<int>(p.integer("bits", 8));
  if (bits < 2 || bits > 16) p.fail("\"bits\" must be in [2, 16]");
  QuantScheme scheme = quant_scheme_by_name(p.str("scheme", "rquant"), bits);
  // Explicit axis overrides for schemes outside the named presets (the
  // Tab. 1 "+asymmetric" / "+unsigned" ablation rows).
  if (p.has("scope")) {
    const std::string scope = p.str("scope", "");
    if (scope == "global") scheme.scope = RangeScope::kGlobal;
    else if (scope == "per_tensor") scheme.scope = RangeScope::kPerTensor;
    else p.fail("\"scope\" must be \"global\" or \"per_tensor\"");
  }
  scheme.asymmetric = p.boolean("asymmetric", scheme.asymmetric);
  scheme.unsigned_codes = p.boolean("unsigned", scheme.unsigned_codes);
  scheme.rounded = p.boolean("rounded", scheme.rounded);
  p.finish();
  return scheme;
}

Json quant_to_json(const QuantScheme& scheme) {
  Json j = Json::object();
  const char* name = quant_scheme_to_name(scheme);
  if (name[0] != '\0') {
    j.set("scheme", name);
    j.set("bits", scheme.bits);
    return j;
  }
  // Unnamed scheme: emit the named base it diverges least from plus the
  // explicit axes (parse applies overrides on top of the base).
  j.set("scheme", "normal");
  j.set("bits", scheme.bits);
  j.set("scope", scheme.scope == RangeScope::kGlobal ? "global" : "per_tensor");
  j.set("asymmetric", scheme.asymmetric);
  j.set("unsigned", scheme.unsigned_codes);
  j.set("rounded", scheme.rounded);
  return j;
}

}  // namespace ber::api
