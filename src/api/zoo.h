// The model zoo: named (dataset, architecture, training method) specs.
//
// Every paper table/figure needs trained models; the zoo maps a stable name
// to a spec, trains the model the first time it is requested and caches the
// checkpoint under the artifacts directory, so the full bench suite trains
// each configuration exactly once across all binaries and runs. It lives in
// the library (not bench/) because the declarative experiment API
// (src/api/spec.h) resolves {"zoo": "<name>"} model entries through it.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"
#include "models/factory.h"
#include "nn/sequential.h"
#include "quant/quantizer.h"
#include "train/trainer.h"

namespace ber::zoo {

struct Spec {
  std::string name;     // zoo key and artifact file stem
  std::string dataset;  // "c10" | "mnist" | "c100"
  ModelConfig model;
  TrainConfig train_cfg;
  std::string label;    // paper-style row label, e.g. "Clipping_0.1"
};

// All registered specs (the full experiment grid).
const std::vector<Spec>& all_specs();
const Spec& spec(const std::string& name);

// Returns the trained model for `name` (training + caching on first use).
// The reference stays valid for the process lifetime. NOT thread-safe with
// concurrent get() of the same name — use ensure() to prefetch in parallel.
Sequential& get(const std::string& name);

// Trains any missing models among `names`, two at a time.
void ensure(const std::vector<std::string>& names);

// Shared datasets (built once).
const Dataset& train_set(const std::string& tag);
const Dataset& test_set(const std::string& tag);
// Reduced test subset used for RErr sampling (500 examples; 200 in fast
// mode) — RErr is averaged over chips, so the subset keeps benches fast.
const Dataset& rerr_set(const std::string& tag);

// Number of random-bit-error chips per RErr estimate (5; 2 in fast mode).
int default_chips();

// Quantization scheme the model was trained with (and should be deployed
// with) — convenience accessor for spec(name).train_cfg.quant.
const QuantScheme& scheme_of(const std::string& name);

}  // namespace ber::zoo
