// Tab. 1 / Tab. 8: impact of the fixed-point quantization scheme on
// robustness. Each scheme is trained with quantization-aware training, as in
// the paper; clean Err barely moves while RErr changes dramatically.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 1 / Tab. 8", "quantization scheme ablation (QAT per scheme)");

  const std::vector<std::string> m8{"c10_global", "c10_normal",
                                    "c10_asym_signed", "c10_asym_unsigned",
                                    "c10_rquant"};
  const std::vector<std::string> m4{"c10_clip015_m4_trunc", "c10_clip015_m4"};
  std::vector<std::string> all = m8;
  all.insert(all.end(), m4.begin(), m4.end());
  zoo::ensure(all);

  const std::vector<double> grid{0.0001, 0.0005, 0.001, 0.005, 0.01};
  std::vector<std::string> headers{"Quantization Scheme", "Err (%)"};
  for (double p : grid) {
    headers.push_back("RErr p=" + TablePrinter::fmt(100 * p, 2) + "%");
  }
  TablePrinter t(headers);
  auto add = [&](const std::string& name) {
    std::vector<std::string> row{zoo::spec(name).label,
                                 TablePrinter::fmt(clean_err_pct(name), 2)};
    for (double p : grid) row.push_back(fmt_rerr(rerr(name, p)));
    t.add_row(std::move(row));
  };
  for (const auto& name : m8) add(name);
  t.add_separator();
  for (const auto& name : m4) add(name);
  t.print();
  std::printf(
      "\nPaper shape: global quantization collapses at tiny p; per-layer "
      "fixes small p; unsigned codes + rounding (RQuant) dominate at large "
      "p. At 4 bit, training without rounding is catastrophic while clean "
      "Err looks almost fine.\n");
  return 0;
}
