// Adversarial vs random bit-error degradation across flip budgets
// (Stutz et al. 2021, arXiv:2104.08323: the worst case is ADVERSARIAL — a
// gradient-guided attacker needs orders of magnitude fewer flips than the
// random model to do the same damage).
//
// Protocol, on a fixed-seed reference MLP trained with the paper's robust
// quantization: for each flip budget B,
//   * adversarial — BitFlipAttacker (progressive gradient-guided selection,
//     3 independent trials via attack-batch resampling);
//   * random-flips — budget-matched control: exactly B uniformly random
//     cells per trial (10 trials);
//   * random-model — RandomBitErrorModel at the rate p = B / (W*m) whose
//     EXPECTED flip count is B (10 chips).
// The acceptance numbers: `adv_beats_random` must be true at every budget
// (strictly larger test-error increase than the budget-matched control) and
// `bit_reproducible` must be true (two attacker runs with the same seed
// produce identical flip sets).
//
// Emits a single JSON object on stdout.
#include <cstdio>

#include "ber.h"

namespace {

using namespace ber;

constexpr int kAdvTrials = 3;
constexpr int kRandTrials = 10;

}  // namespace

int main() {
  // Bit-reproducible attack trajectories need the pinned reference backend
  // (greedy flip selection compares float saliencies; reassociation could
  // reorder ties).
  kernels::set_default_backend("reference");
  // Fixed-seed reference net: MLP on the MNIST-analog, RQuant 8-bit.
  SyntheticConfig data_cfg = SyntheticConfig::mnist();
  data_cfg.n_train = 1000;
  data_cfg.n_test = 500;
  const Dataset train_set = make_synthetic(data_cfg, /*train=*/true);
  const Dataset test_set = make_synthetic(data_cfg, /*train=*/false);

  ModelConfig model_cfg;
  model_cfg.arch = Arch::kMlp;
  model_cfg.in_channels = 1;
  model_cfg.width = 12;
  auto model = build_model(model_cfg);

  TrainConfig train_cfg;
  train_cfg.quant = QuantScheme::rquant(8);
  train_cfg.epochs = 20;
  train_cfg.batch_size = 100;
  train_cfg.sgd.lr = 0.1f;  // small MLP converges faster with a higher lr
  train_cfg.seed = 11;
  train(*model, train_set, test_set, train_cfg);

  const RobustnessEvaluator evaluator(*model, train_cfg.quant);
  const NetSnapshot& base = evaluator.snapshot();
  const std::size_t weights = base.total_weights();
  const double cells =
      static_cast<double>(weights) * train_cfg.quant.bits;
  const float clean = test_error(*model, test_set, &train_cfg.quant);

  Json report = Json::object();
  report.set("bench", "adv_attack");
  report.set("paper", "arXiv:2104.08323");
  report.set("weights", static_cast<long>(weights));
  report.set("bits", train_cfg.quant.bits);
  report.set("clean_err_pct", 100.0 * clean);
  report.set("adv_trials", kAdvTrials);
  report.set("rand_trials", kRandTrials);
  Json results = Json::array();

  bool all_beat_random = true;
  for (int budget : {2, 8, 32, 128}) {
    AttackConfig cfg;
    cfg.budget = budget;
    cfg.rounds = 4;
    cfg.attack_examples = 256;
    cfg.seed = 1;
    BitFlipAttacker attacker(*model, train_cfg.quant, train_set, cfg);
    const AdversarialBitErrorModel adv =
        make_adversarial_model(attacker, base, kAdvTrials);
    const RobustResult adv_r = evaluator.run(adv, test_set, kAdvTrials);

    const AdversarialBitErrorModel rnd_flips = random_flip_model(
        base, static_cast<std::size_t>(budget), kRandTrials);
    const RobustResult rnd_r = evaluator.run(rnd_flips, test_set, kRandTrials);

    BitErrorConfig bec;
    bec.p = budget / cells;  // expected flip count = budget
    const RobustResult model_r =
        evaluator.run(RandomBitErrorModel(bec), test_set, kRandTrials);

    const bool beats = adv_r.mean_rerr - clean > rnd_r.mean_rerr - clean;
    all_beat_random = all_beat_random && beats;
    Json row = Json::object();
    row.set("budget", budget);
    row.set("adv_rerr_pct", 100.0 * adv_r.mean_rerr);
    row.set("adv_std_pct", 100.0 * adv_r.std_rerr);
    row.set("rand_flips_rerr_pct", 100.0 * rnd_r.mean_rerr);
    row.set("rand_model_rerr_pct", 100.0 * model_r.mean_rerr);
    row.set("adv_minus_rand_pp", 100.0 * (adv_r.mean_rerr - rnd_r.mean_rerr));
    row.set("adv_beats_random", beats);
    results.push_back(std::move(row));
  }

  // Bit-reproducibility: the same (config, seed) must reproduce the flip set
  // exactly, across independent attacker instances.
  AttackConfig cfg;
  cfg.budget = 32;
  cfg.rounds = 4;
  cfg.attack_examples = 256;
  cfg.seed = 1;
  BitFlipAttacker a1(*model, train_cfg.quant, train_set, cfg);
  BitFlipAttacker a2(*model, train_cfg.quant, train_set, cfg);
  const bool reproducible =
      a1.attack(base).flips == a2.attack(base).flips;

  report.set("results", std::move(results));
  report.set("adv_beats_random_at_every_budget", all_beat_random);
  report.set("bit_reproducible", reproducible);
  std::printf("%s\n", report.dump().c_str());
  return 0;
}
