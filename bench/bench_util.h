// Shared helpers for the paper-table bench binaries.
//
// The RErr helpers are thin shells over the declarative experiment API
// (api/experiment.h): rerr()/rerr_sweep() build a one-off api::Experiment on
// the zoo model and extract the RobustResults from its Report, so bench
// binaries and `ber_run configs/*.json` produce their numbers through the
// same Runner code path (bit-identical for a fixed seed).
#pragma once

#include <string>
#include <vector>

#include "ber.h"
#include "zoo.h"

namespace ber::bench {

// Prints the bench banner: which paper artifact this binary regenerates.
void banner(const std::string& paper_ref, const std::string& what);

// Clean test error (in %) of a zoo model, quantized with its own scheme.
double clean_err_pct(const std::string& name);

// RErr (in %) of a zoo model at bit error rate p (fraction), under the
// model's own quantization scheme and the uniform flip model.
RobustResult rerr(const std::string& name, double p);

// RErr under an explicit scheme (post-training scheme ablations).
RobustResult rerr_with_scheme(const std::string& name,
                              const QuantScheme& scheme, double p);

// RErr of a zoo model across a whole rate grid in one pass: the model is
// quantized once and each chip's fault list is built once at max(grid)
// (RobustnessEvaluator::run_rate_sweep). Element i corresponds to grid[i]
// and is bit-identical to rerr(name, grid[i]).
std::vector<RobustResult> rerr_sweep(const std::string& name,
                                     const std::vector<double>& grid);

// Formats "mean ±std" of a RobustResult in %.
std::string fmt_rerr(const RobustResult& r);

// Standard p grids (in %), matching the paper's columns.
const std::vector<double>& c10_p_grid();    // 0.01 .. 2.5
const std::vector<double>& c100_p_grid();   // 0.001 .. 1
const std::vector<double>& mnist_p_grid();  // 1 .. 20

}  // namespace ber::bench
