// Tab. 18-21: the full appendix RErr grids — every cached model of each
// dataset evaluated over the standard p grid. Relies entirely on the zoo
// cache populated by the other benches (it will train anything missing).
#include "bench_util.h"

namespace {

using namespace ber;
using namespace ber::bench;

void grid_for(const std::string& tag, const std::string& title,
              const std::vector<double>& grid) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> names;
  for (const auto& s : zoo::all_specs()) {
    if (s.dataset == tag) names.push_back(s.name);
  }
  zoo::ensure(names);

  std::vector<std::string> headers{"Model", "m", "Err (%)"};
  for (double p : grid) {
    headers.push_back("p=" + TablePrinter::fmt(100 * p, 100 * p < 0.01 ? 3 : 2) +
                      "%");
  }
  TablePrinter t(headers);
  for (const auto& name : names) {
    const zoo::Spec& s = zoo::spec(name);
    std::vector<std::string> row{s.label,
                                 std::to_string(s.train_cfg.quant.bits),
                                 TablePrinter::fmt(clean_err_pct(name), 2)};
    for (double p : grid) {
      row.push_back(TablePrinter::fmt(100.0 * rerr(name, p).mean_rerr, 2));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  banner("Tab. 18-21", "full appendix RErr grids for every trained model");
  grid_for("c10", "CIFAR10 analog (Tab. 18/19):", c10_p_grid());
  grid_for("c100", "CIFAR100 analog (Tab. 20):", c100_p_grid());
  grid_for("mnist", "MNIST analog (Tab. 21):", mnist_p_grid());
  return 0;
}
