// Tab. 3 / Tab. 16: training on a fixed bit error pattern (PattBET) does not
// generalize — neither to lower rates of the same pattern nor to random
// patterns.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 3", "fixed-pattern bit error training fails to generalize");

  zoo::ensure({"c10_pattbet_p25", "c10_pattbet015_p25", "c10_randbet015_p1"});

  // Evaluation on the SAME fixed pattern the model trained on (pattern_seed
  // from the spec), at the training rate and at a lower rate (higher
  // voltage). The paper's striking result: lower rate can be WORSE.
  TablePrinter t({"Model", "fixed pattern p=1%", "fixed pattern p=2.5%",
                  "random patterns p=1%", "random patterns p=2.5%"});
  for (const std::string name : {"c10_pattbet_p25", "c10_pattbet015_p25"}) {
    const zoo::Spec& s = zoo::spec(name);
    Sequential& model = zoo::get(name);
    const Dataset& data = zoo::rerr_set(s.dataset);
    NetQuantizer quantizer(s.train_cfg.quant);

    auto fixed_pattern_rerr = [&](double p) {
      const auto params = model.params();
      WeightStash stash;
      stash.save(params);
      NetSnapshot snap = quantizer.quantize(params);
      BitErrorConfig cfg;
      cfg.p = p;
      inject_random_bit_errors(snap, cfg, s.train_cfg.pattern_seed);
      quantizer.write_dequantized(snap, params);
      const float err = evaluate(model, data).error;
      stash.restore(params);
      return 100.0 * err;
    };
    BitErrorConfig c1, c25;
    c1.p = 0.01;
    c25.p = 0.025;
    t.add_row({s.label, TablePrinter::fmt(fixed_pattern_rerr(0.01), 2),
               TablePrinter::fmt(fixed_pattern_rerr(0.025), 2),
               fmt_rerr(rerr(name, 0.01)), fmt_rerr(rerr(name, 0.025))});
  }
  // RandBET reference row: random-pattern training generalizes.
  t.add_separator();
  t.add_row({zoo::spec("c10_randbet015_p1").label, "-", "-",
             fmt_rerr(rerr("c10_randbet015_p1", 0.01)),
             fmt_rerr(rerr("c10_randbet015_p1", 0.025))});
  t.print();
  std::printf(
      "\nPaper shape: PattBET looks fine on its own pattern at the trained "
      "rate, degrades at LOWER rates of the same pattern (subset!), and "
      "collapses on random patterns; RandBET stays flat.\n");
  return 0;
}
