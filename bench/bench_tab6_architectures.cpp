// Tab. 6: architecture inventory — layers, weight counts W, and the
// expected number of bit errors p*m*W at various rates.
#include "bench_util.h"

int main() {
  using namespace ber;
  bench::banner("Tab. 6", "architectures, weight counts, expected bit errors");

  struct Entry {
    std::string label;
    ModelConfig cfg;
  };
  std::vector<Entry> entries;
  {
    ModelConfig c10;  // defaults
    entries.push_back({"SimpleNet-GN (CIFAR10/100 analog)", c10});
    ModelConfig mnist = c10;
    mnist.in_channels = 1;
    entries.push_back({"SimpleNet-GN (MNIST analog)", mnist});
    ModelConfig bn = c10;
    bn.norm = NormKind::kBatchNorm;
    entries.push_back({"SimpleNet-BN", bn});
    ModelConfig res = c10;
    res.arch = Arch::kResNetSmall;
    entries.push_back({"ResNet-small-GN", res});
  }

  TablePrinter t({"Architecture", "layers", "W (weights)", "pmW @ p=0.1% m=8",
                  "pmW @ p=1% m=8", "pmW @ p=1% m=4"});
  for (const auto& e : entries) {
    auto model = build_model(e.cfg);
    long layers = 0;
    model->visit([&](Layer&) { ++layers; });
    const long w = model->num_weights();
    t.add_row({e.label, std::to_string(layers), std::to_string(w),
               TablePrinter::fmt(expected_bit_errors(0.001, 8, w), 0),
               TablePrinter::fmt(expected_bit_errors(0.01, 8, w), 0),
               TablePrinter::fmt(expected_bit_errors(0.01, 4, w), 0)});
  }
  t.print();

  std::printf("\nLayer listing (SimpleNet-GN, CIFAR10 analog):\n");
  auto model = build_model(ModelConfig{});
  model->visit([&](Layer& l) {
    if (dynamic_cast<Sequential*>(&l) == nullptr) {
      std::printf("  %s\n", l.name().c_str());
    }
  });
  std::printf(
      "\nPaper scale note: the paper's SimpleNet has W=5.5M on CIFAR10; this "
      "reproduction is deliberately ~250x smaller for CPU training, and bit "
      "errors are i.i.d. per weight so the per-weight error statistics "
      "match.\n");
  return 0;
}
