// Compute-backend microbenchmark: reference vs blocked kernels.
//
// Emits a single JSON object (core/json) on stdout so future PRs can track
// the compute hot path. Sections:
//   * gemm        — GFLOP/s grid over square sizes (plus a conv-shaped
//                   rectangular case) for each backend, single-threaded, and
//                   the blocked backend with intra-GEMM sharding. The
//                   acceptance number is speedup_128 (blocked vs reference
//                   at 128^3, one core): >= 3x.
//   * gemm_variants — gemm_at / gemm_bt parity of the win at 128^3.
//   * conv        — forward latency at batch 8 on one core: reference
//                   per-image lowering vs blocked per-image (same GEMM, old
//                   lowering) vs blocked batch-coalesced (one im2col + one
//                   GEMM across the batch). coalesced_speedup_vs_reference
//                   is the acceptance number (>= 1.5x); the per-image
//                   blocked column isolates how much of it is coalescing
//                   rather than the faster GEMM.
//   * conv_1x1    — pointwise-conv im2col elision: inference runs a plain
//                   GEMM on the input, vs the lowered (cache-filling) path.
//   * end_to_end  — clean-evaluation throughput (images/s) of the paper's
//                   default model under each backend.
//   * int8        — compute-on-codes datapath at 8 bits: quantized-vs-float
//                   Linear GEMM, end-to-end eval throughput on the
//                   paper-scale width-32 model (acceptance:
//                   int8_end_to_end_speedup >= 1.5x), and delta-redeploy
//                   weight-memory traffic vs a full deploy.
//
// Timings are wall-clock medians-of-one (~0.3s windows); the JSON also
// carries the tile sizes and thread count so regressions are attributable.
#include <chrono>
#include <cstdio>
#include <vector>

#include "ber.h"

namespace {

using namespace ber;
using Clock = std::chrono::steady_clock;

// Runs fn repeatedly until ~0.3s elapsed (at least twice); returns seconds
// per call.
template <typename Fn>
double seconds_per_call(const Fn& fn) {
  fn();  // warm-up (also converges the scratch arena)
  int iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 0.3 || iters < 2);
  return elapsed / iters;
}

double gflops(long m, long n, long k, double sec) {
  return 2.0 * static_cast<double>(m) * n * k / sec / 1e9;
}

struct GemmCase {
  long m, n, k;
};

}  // namespace

int main() {
  using kernels::BlockedBackend;
  const kernels::Backend& ref = kernels::backend("reference");
  const BlockedBackend blocked1(/*threads=*/1);  // the single-core story
  const kernels::Backend& blocked_mt = kernels::backend("blocked");
  const int threads = default_threads();
  Rng rng(1);

  Json report = Json::object();
  report.set("bench", "kernels");
  report.set("threads", threads);
  report.set("mr", BlockedBackend::mr());
  report.set("nr", BlockedBackend::nr());

  // ------------------------------------------------------------- gemm ---
  const std::vector<GemmCase> cases{
      {32, 32, 32}, {64, 64, 64}, {128, 128, 128}, {256, 256, 256},
      {32, 1152, 144}};  // conv-shaped: [out_c, N*OH*OW, in*k*k] at batch 8
  double speedup_128 = 0.0;
  Json gemm_rows = Json::array();
  for (std::size_t ci = 0; ci < cases.size(); ++ci) {
    const auto [m, n, k] = cases[ci];
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c({m, n});
    const double ref_sec = seconds_per_call(
        [&] { ref.gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data()); });
    const double blk_sec = seconds_per_call([&] {
      blocked1.gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    });
    const double mt_sec = seconds_per_call([&] {
      blocked_mt.gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
    });
    const double speedup = ref_sec / blk_sec;
    if (m == 128 && n == 128 && k == 128) speedup_128 = speedup;
    Json row = Json::object();
    row.set("m", m).set("n", n).set("k", k);
    row.set("reference_gflops", gflops(m, n, k, ref_sec));
    row.set("blocked_gflops", gflops(m, n, k, blk_sec));
    row.set("blocked_mt_gflops", gflops(m, n, k, mt_sec));
    row.set("blocked_speedup", speedup);
    gemm_rows.push_back(std::move(row));
  }
  report.set("gemm", std::move(gemm_rows));
  report.set("gemm_blocked_speedup_128", speedup_128);

  // --------------------------------------------------- gemm variants ---
  {
    const long m = 128, n = 128, k = 128;
    Tensor at = Tensor::randn({k, m}, rng);
    Tensor bt = Tensor::randn({n, k}, rng);
    Tensor a = Tensor::randn({m, k}, rng);
    Tensor b = Tensor::randn({k, n}, rng);
    Tensor c({m, n});
    const double ref_at = seconds_per_call([&] {
      ref.gemm_at(m, n, k, 1.0f, at.data(), b.data(), 0.0f, c.data());
    });
    const double blk_at = seconds_per_call([&] {
      blocked1.gemm_at(m, n, k, 1.0f, at.data(), b.data(), 0.0f, c.data());
    });
    const double ref_bt = seconds_per_call([&] {
      ref.gemm_bt(m, n, k, 1.0f, a.data(), bt.data(), 0.0f, c.data());
    });
    const double blk_bt = seconds_per_call([&] {
      blocked1.gemm_bt(m, n, k, 1.0f, a.data(), bt.data(), 0.0f, c.data());
    });
    Json variants = Json::array();
    Json at_row = Json::object();
    at_row.set("variant", "at");
    at_row.set("reference_gflops", gflops(m, n, k, ref_at));
    at_row.set("blocked_gflops", gflops(m, n, k, blk_at));
    at_row.set("blocked_speedup", ref_at / blk_at);
    variants.push_back(std::move(at_row));
    Json bt_row = Json::object();
    bt_row.set("variant", "bt");
    bt_row.set("reference_gflops", gflops(m, n, k, ref_bt));
    bt_row.set("blocked_gflops", gflops(m, n, k, blk_bt));
    bt_row.set("blocked_speedup", ref_bt / blk_bt);
    variants.push_back(std::move(bt_row));
    report.set("gemm_variants", std::move(variants));
  }

  // ------------------------------------------------------------- conv ---
  {
    const long batch = 8;
    Conv2d conv(16, 32, 3, 1, 1);
    for (Param* p : conv.params()) {
      for (long i = 0; i < p->value.numel(); ++i) {
        p->value[i] = rng.normal() * 0.1f;
      }
    }
    Tensor x = Tensor::randn({batch, 16, 12, 12}, rng);
    // Blocked GEMM but the old per-image lowering: isolates the coalescing
    // gain from the GEMM gain.
    class BlockedPerImage final : public kernels::Backend {
     public:
      std::string name() const override { return "blocked_per_image"; }
      void gemm(long m, long n, long k, float alpha, const float* a,
                const float* b, float beta, float* c) const override {
        inner_.gemm(m, n, k, alpha, a, b, beta, c);
      }
      void gemm_at(long m, long n, long k, float alpha, const float* a,
                   const float* b, float beta, float* c) const override {
        inner_.gemm_at(m, n, k, alpha, a, b, beta, c);
      }
      void gemm_bt(long m, long n, long k, float alpha, const float* a,
                   const float* b, float beta, float* c) const override {
        inner_.gemm_bt(m, n, k, alpha, a, b, beta, c);
      }
      bool coalesced_conv() const override { return false; }

     private:
      BlockedBackend inner_{/*threads=*/1};
    } blocked_per_image;

    const double ref_sec = seconds_per_call([&] {
      kernels::ScopedBackend g(ref);
      Tensor y = conv.forward(x, false);
    });
    const double blk_img_sec = seconds_per_call([&] {
      kernels::ScopedBackend g(blocked_per_image);
      Tensor y = conv.forward(x, false);
    });
    const double blk_coal_sec = seconds_per_call([&] {
      kernels::ScopedBackend g(blocked1);
      Tensor y = conv.forward(x, false);
    });
    Json conv_j = Json::object();
    conv_j.set("batch", batch);
    conv_j.set("reference_per_image_us", ref_sec * 1e6);
    conv_j.set("blocked_per_image_us", blk_img_sec * 1e6);
    conv_j.set("blocked_coalesced_us", blk_coal_sec * 1e6);
    conv_j.set("coalesced_speedup_vs_reference", ref_sec / blk_coal_sec);
    conv_j.set("coalesced_speedup_vs_blocked_per_image",
               blk_img_sec / blk_coal_sec);
    report.set("conv", std::move(conv_j));
  }

  // -------------------------------------------------------- conv 1x1 ---
  // Pointwise convolution: inference elides im2col entirely (plain GEMM on
  // the input). Compare against a same-shape forward that is forced down
  // the lowered path by running in training mode (which must fill the
  // column cache for backward).
  {
    const long batch = 8;
    Conv2d conv(32, 64, 1, 1, 0);
    for (Param* p : conv.params()) {
      for (long i = 0; i < p->value.numel(); ++i) {
        p->value[i] = rng.normal() * 0.1f;
      }
    }
    Tensor x = Tensor::randn({batch, 32, 12, 12}, rng);
    const double lowered_sec = seconds_per_call([&] {
      kernels::ScopedBackend g(blocked1);
      Tensor y = conv.forward(x, true);  // training: keeps im2col + cache
    });
    const double elided_sec = seconds_per_call([&] {
      kernels::ScopedBackend g(blocked1);
      Tensor y = conv.forward(x, false);  // inference: direct GEMM on x
    });
    Json pw = Json::object();
    pw.set("batch", batch);
    pw.set("blocked_lowered_us", lowered_sec * 1e6);
    pw.set("blocked_elided_us", elided_sec * 1e6);
    pw.set("elision_speedup", lowered_sec / elided_sec);
    report.set("conv_1x1", std::move(pw));
  }

  // ------------------------------------------------------- end to end ---
  {
    Rng mrng(7);
    ModelConfig mc;
    auto model = build_model(mc);
    he_init(*model, mrng);
    SyntheticConfig dc = SyntheticConfig::cifar10();
    dc.n_test = 256;
    Dataset data = make_synthetic(dc, /*train=*/false);
    const long images = data.size();
    const double ref_sec = seconds_per_call([&] {
      kernels::ScopedBackend g(ref);
      evaluate(*model, data, /*batch=*/64);
    });
    const double blk_sec = seconds_per_call([&] {
      kernels::ScopedBackend g(blocked1);
      evaluate(*model, data, /*batch=*/64);
    });
    Json e2e = Json::object();
    e2e.set("images", images);
    e2e.set("reference_images_per_sec", images / ref_sec);
    e2e.set("blocked_images_per_sec", images / blk_sec);
    e2e.set("blocked_speedup", ref_sec / blk_sec);
    report.set("end_to_end", std::move(e2e));
  }
  // ------------------------------------------------------------- int8 ---
  // Compute-on-codes datapath: int8 GEMM over 8-bit quantized code words
  // with fused bias+ReLU epilogues (kernels/qgemm_blocked.cpp), against the
  // float blocked path on the dequantized weights of the same model. The
  // acceptance number is int8.end_to_end.speedup (>= 1.5x at 8 bits); the
  // delta_redeploy block records the weight-memory traffic of an
  // incremental operating-point move vs a from-scratch deploy.
  {
    const QuantScheme scheme = QuantScheme::rquant(8);
    Json int8_j = Json::object();
    int8_j.set("scheme", "rquant8");

    // Quantized linear forward (qgemm_bt + fused epilogue) vs float.
    {
      const long batch = 256, in = 256, out = 256;
      Sequential seq;
      seq.emplace<Linear>(in, out);
      Rng lrng(13);
      he_init(seq, lrng);
      NetQuantizer lq(scheme);
      const NetSnapshot lsnap = lq.quantize(seq.params());
      Tensor x = Tensor::randn({batch, in}, lrng);
      deploy_snapshot(lsnap, param_slots(seq), /*on_codes=*/false);
      const double float_sec = seconds_per_call([&] {
        kernels::ScopedBackend g(blocked1);
        Tensor y = seq.forward(x, false);
      });
      deploy_snapshot(lsnap, param_slots(seq), /*on_codes=*/true);
      const double quant_sec = seconds_per_call([&] {
        kernels::ScopedBackend g(blocked1);
        Tensor y = seq.forward(x, false);
      });
      Json lin = Json::object();
      lin.set("m", out).set("n", batch).set("k", in);
      lin.set("float_gflops", gflops(out, batch, in, float_sec));
      lin.set("quant_gops", gflops(out, batch, in, quant_sec));
      lin.set("speedup", float_sec / quant_sec);
      int8_j.set("linear", std::move(lin));
    }

    // End-to-end clean evaluation at the paper's scale (CIFAR-sized 32x32
    // inputs, width-32 SimpleNet): float blocked on dequantized 8-bit
    // weights vs compute-on-codes int8. The repo-default 12x12/width-12
    // config is a scaled-down test model whose conv GEMMs are a minority of
    // the runtime (norms/pools/lowering dominate), so it cannot show a
    // compute-path win end to end; the accelerator regime the paper targets
    // is GEMM-bound.
    Rng mrng(11);
    ModelConfig mc;
    mc.width = 32;
    mc.image_size = 32;
    auto model = build_model(mc);
    he_init(*model, mrng);
    SyntheticConfig dc = SyntheticConfig::cifar10();
    dc.image_size = 32;
    dc.n_test = 128;
    Dataset data = make_synthetic(dc, /*train=*/false);
    const long images = data.size();
    NetQuantizer quantizer(scheme);
    const NetSnapshot snap = quantizer.quantize(model->params());
    {
      deploy_snapshot(snap, param_slots(*model), /*on_codes=*/false);
      const double float_sec = seconds_per_call([&] {
        kernels::ScopedBackend g(blocked1);
        evaluate(*model, data, /*batch=*/64);
      });
      deploy_snapshot(snap, param_slots(*model), /*on_codes=*/true);
      const double quant_sec = seconds_per_call([&] {
        kernels::ScopedBackend g(blocked1);
        evaluate(*model, data, /*batch=*/64);
      });
      deploy_snapshot(snap, param_slots(*model), /*on_codes=*/false);
      Json e2e = Json::object();
      e2e.set("images", images);
      e2e.set("image_size", mc.image_size);
      e2e.set("width", mc.width);
      e2e.set("float_images_per_sec", images / float_sec);
      e2e.set("int8_images_per_sec", images / quant_sec);
      e2e.set("speedup", float_sec / quant_sec);
      report.set("int8_end_to_end_speedup", float_sec / quant_sec);
      int8_j.set("end_to_end", std::move(e2e));
    }

    // Weight-memory traffic of operating-point moves: a delta redeploy
    // patches only the code words whose fault set changed, a full deploy
    // rewrites every word.
    {
      auto base = std::make_shared<const NetSnapshot>(snap);
      ChipFaultList faults(*base, BitErrorConfig{0.05}, /*chip_seed=*/7,
                           /*p_max=*/0.05);
      const std::vector<double> voltages{1.0, 0.9, 0.8, 0.7};
      const std::vector<double> rates{0.0005, 0.005, 0.02, 0.05};
      Replica replica(0, *model, quantizer, base, std::move(faults),
                      voltages, rates, /*deploy_index=*/3,
                      /*on_codes=*/true);
      const unsigned long long full_bytes =
          replica.deploy_stats().bytes_written;
      replica.deploy(2);  // one step up the grid: incremental patch
      const unsigned long long delta_bytes =
          replica.deploy_stats().bytes_written - full_bytes;
      Json dj = Json::object();
      dj.set("full_deploy_bytes", static_cast<long>(full_bytes));
      dj.set("delta_deploy_bytes", static_cast<long>(delta_bytes));
      dj.set("delta_fraction",
             static_cast<double>(delta_bytes) /
                 static_cast<double>(full_bytes));
      int8_j.set("delta_redeploy", std::move(dj));
    }
    report.set("int8", std::move(int8_j));
  }

  std::printf("%s\n", report.dump().c_str());
  return 0;
}
