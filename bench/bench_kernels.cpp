// Kernel microbenchmarks (google-benchmark): GEMM, conv forward, quantize /
// dequantize / bit injection throughput, and end-to-end inference latency
// with and without bit errors — supporting the paper's claim that RandBET
// "does not affect inference" (bit errors are a memory phenomenon, not a
// compute one).
#include <benchmark/benchmark.h>

#include "ber.h"

namespace {

using namespace ber;

void BM_Gemm(benchmark::State& state) {
  const long n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::randn({n, n}, rng);
  Tensor b = Tensor::randn({n, n}, rng);
  Tensor c({n, n});
  for (auto _ : state) {
    gemm(n, n, n, 1.0f, a.data(), b.data(), 0.0f, c.data());
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(32)->Arg(64)->Arg(128);

void BM_ConvForward(benchmark::State& state) {
  Rng rng(2);
  Conv2d conv(16, 32, 3, 1, 1);
  for (Param* p : conv.params()) {
    for (long i = 0; i < p->value.numel(); ++i) p->value[i] = rng.normal() * 0.1f;
  }
  Tensor x = Tensor::randn({8, 16, 12, 12}, rng);
  for (auto _ : state) {
    Tensor y = conv.forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_ConvForward);

void BM_Quantize(benchmark::State& state) {
  Rng rng(3);
  std::vector<float> w(static_cast<std::size_t>(state.range(0)));
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const QuantScheme scheme = QuantScheme::rquant(8);
  for (auto _ : state) {
    QuantizedTensor qt = quantize(w, scheme);
    benchmark::DoNotOptimize(qt.codes.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Quantize)->Arg(1 << 14)->Arg(1 << 18);

void BM_Dequantize(benchmark::State& state) {
  Rng rng(4);
  std::vector<float> w(static_cast<std::size_t>(state.range(0)));
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  QuantizedTensor qt = quantize(w, QuantScheme::rquant(8));
  std::vector<float> out(w.size());
  for (auto _ : state) {
    dequantize(qt, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_Dequantize)->Arg(1 << 14)->Arg(1 << 18);

void BM_InjectBitErrors(benchmark::State& state) {
  Rng rng(5);
  std::vector<float> w(1 << 16);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  NetSnapshot base;
  base.tensors.push_back(quantize(w, QuantScheme::rquant(8)));
  base.offsets.push_back(0);
  BitErrorConfig cfg;
  cfg.p = static_cast<double>(state.range(0)) / 10000.0;
  std::uint64_t chip = 0;
  for (auto _ : state) {
    NetSnapshot snap = base;
    inject_random_bit_errors(snap, cfg, ++chip);
    benchmark::DoNotOptimize(snap.tensors[0].codes.data());
  }
  state.SetItemsProcessed(state.iterations() * (1 << 16) * 8);
}
BENCHMARK(BM_InjectBitErrors)->Arg(10)->Arg(100)->Arg(250);  // p = 0.1/1/2.5 %

// Inference latency is IDENTICAL with and without bit errors: errors perturb
// the stored weights once; the forward pass does the same work.
void BM_InferenceClean(benchmark::State& state) {
  Rng rng(6);
  ModelConfig mc;
  auto model = build_model(mc);
  he_init(*model, rng);
  Tensor x = Tensor::randn({1, 3, 12, 12}, rng);
  for (auto _ : state) {
    Tensor y = model->forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_InferenceClean);

void BM_InferenceWithBitErrors(benchmark::State& state) {
  Rng rng(7);
  ModelConfig mc;
  auto model = build_model(mc);
  he_init(*model, rng);
  // Perturb the deployed weights once (the low-voltage scenario).
  NetQuantizer quantizer(QuantScheme::rquant(8));
  NetSnapshot snap = quantizer.quantize(model->params());
  BitErrorConfig cfg;
  cfg.p = 0.01;
  inject_random_bit_errors(snap, cfg, 42);
  quantizer.write_dequantized(snap, model->params());
  Tensor x = Tensor::randn({1, 3, 12, 12}, rng);
  for (auto _ : state) {
    Tensor y = model->forward(x, false);
    benchmark::DoNotOptimize(y.data());
  }
}
BENCHMARK(BM_InferenceWithBitErrors);

}  // namespace

BENCHMARK_MAIN();
