// Fig. 9: robustness against relative L-inf weight noise — clipping's
// benefit is not specific to bit errors.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Fig. 9", "relative L-inf weight-noise robustness of clipping");

  const std::vector<std::string> models{"c10_normal", "c10_clip300",
                                        "c10_clip200", "c10_clip150"};
  zoo::ensure(models);

  const std::vector<double> eps_grid{0.01, 0.02, 0.05, 0.10, 0.20, 0.30};
  std::vector<std::string> headers{"Model"};
  for (double e : eps_grid) {
    headers.push_back("eps=" + TablePrinter::fmt(100 * e, 0) + "%");
  }
  TablePrinter t(headers);
  for (const auto& name : models) {
    const zoo::Spec& s = zoo::spec(name);
    Sequential& model = zoo::get(name);
    // Float-space evaluator (no quantization), shared across the eps grid.
    RobustnessEvaluator evaluator(model);
    std::vector<std::string> row{s.label};
    for (double e : eps_grid) {
      const RobustResult r = evaluator.run(
          LinfNoiseModel(e), zoo::rerr_set(s.dataset), zoo::default_chips());
      row.push_back(TablePrinter::fmt(100.0 * r.mean_rerr, 2));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\nPaper shape: stronger clipping pushes the collapse point to larger "
      "relative noise (note: L-inf noise hits ALL weights, unlike BErr_p).\n");
  return 0;
}
