// Fig. 6: effect of weight clipping on logits and confidences, clean vs
// under random bit errors (p = 1%). Clipped networks keep high confidence
// with far smaller degradation under bit errors.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Fig. 6", "logit/confidence distributions under clipping (p=1%)");

  const std::vector<std::string> models{"c10_rquant", "c10_clip150",
                                        "c10_randbet_noclip_p1"};
  zoo::ensure(models);

  TablePrinter t({"Model", "max |w|", "mean max-logit (clean)",
                  "logit gap (clean)", "Conf clean (%)", "Conf p=1% (%)"});
  for (const auto& name : models) {
    Sequential& model = zoo::get(name);
    const zoo::Spec& s = zoo::spec(name);
    const Dataset& data = zoo::rerr_set(s.dataset);

    // Clean statistics on the deployed (quantized) weights.
    const auto params = model.params();
    WeightStash stash;
    stash.save(params);
    NetQuantizer quantizer(s.train_cfg.quant);
    quantizer.write_dequantized(quantizer.quantize(params), params);
    const LogitStats clean = logit_stats(model, data);
    float wmax = 0.0f;
    for (Param* p : params) wmax = std::max(wmax, p->value.abs_max());
    stash.restore(params);

    const RobustResult pert = rerr(name, 0.01);
    t.add_row({s.label, TablePrinter::fmt(wmax, 3),
               TablePrinter::fmt(clean.mean_max_logit, 2),
               TablePrinter::fmt(clean.mean_logit_gap, 2),
               TablePrinter::fmt(100.0 * clean.mean_confidence, 2),
               TablePrinter::fmt(100.0 * pert.mean_confidence, 2)});
  }
  t.print();
  std::printf(
      "\nPaper shape (Fig. 6): clipping shrinks the weight range yet the "
      "network still reaches high clean confidence, and its confidence under "
      "bit errors degrades far less than the unclipped baseline.\n");
  return 0;
}
