// Tab. 10: BatchNorm is not robust to weight bit errors — unless its batch
// statistics are recomputed at test time; GroupNorm is the robust default.
#include "bench_util.h"

namespace {

using namespace ber;
using namespace ber::bench;

// RErr with BN layers optionally switched to batch statistics at eval.
RobustResult rerr_bn(const std::string& name, double p, bool batch_stats) {
  const zoo::Spec& s = zoo::spec(name);
  Sequential& model = zoo::get(name);
  model.visit([&](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) {
      bn->set_use_batch_stats_in_eval(batch_stats);
    }
  });
  BitErrorConfig cfg;
  cfg.p = p;
  const RobustResult r =
      robust_error(model, s.train_cfg.quant, zoo::rerr_set(s.dataset), cfg,
                   zoo::default_chips(), 1000);
  model.visit([&](Layer& l) {
    if (auto* bn = dynamic_cast<BatchNorm2d*>(&l)) {
      bn->set_use_batch_stats_in_eval(false);
    }
  });
  return r;
}

}  // namespace

int main() {
  banner("Tab. 10", "BatchNorm vs GroupNorm robustness");

  zoo::ensure({"c10_rquant", "c10_clip150", "c10_rquant_bn", "c10_clip015_bn"});

  TablePrinter t({"Model", "Err (%)", "RErr p=0.1%", "RErr p=0.5%"});
  for (const std::string name : {"c10_rquant", "c10_clip150"}) {
    t.add_row({"GN " + zoo::spec(name).label,
               TablePrinter::fmt(clean_err_pct(name), 2),
               fmt_rerr(rerr(name, 0.001)), fmt_rerr(rerr(name, 0.005))});
  }
  t.add_separator();
  for (const std::string name : {"c10_rquant_bn", "c10_clip015_bn"}) {
    t.add_row({zoo::spec(name).label + " (accumulated stats)",
               TablePrinter::fmt(clean_err_pct(name), 2),
               fmt_rerr(rerr_bn(name, 0.001, false)),
               fmt_rerr(rerr_bn(name, 0.005, false))});
  }
  t.add_separator();
  for (const std::string name : {"c10_rquant_bn", "c10_clip015_bn"}) {
    t.add_row({zoo::spec(name).label + " (batch stats at test)",
               TablePrinter::fmt(clean_err_pct(name), 2),
               fmt_rerr(rerr_bn(name, 0.001, true)),
               fmt_rerr(rerr_bn(name, 0.005, true))});
  }
  t.print();
  std::printf(
      "\nPaper shape: BN with accumulated statistics degrades much faster "
      "than GN under bit errors; recomputing batch statistics at test time "
      "recovers most of it (the running stats don't account for perturbed "
      "weights).\n");
  return 0;
}
