// The model zoo moved into the library (src/api/zoo.h) so the declarative
// experiment API can resolve zoo models by name; this forwarding header
// keeps historical bench includes working.
#pragma once

#include "api/zoo.h"
