// Tab. 11: clipping's robustness is NOT a scale effect — down-scaling a
// normally-trained model to the clipped weight range does not make it
// robust.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 11", "down-scaling is not clipping");

  zoo::ensure({"c10_rquant", "c10_clip150"});

  const zoo::Spec& rq = zoo::spec("c10_rquant");
  Sequential& rquant = zoo::get("c10_rquant");
  Sequential& clipped = zoo::get("c10_clip150");

  // Build the scaled copy: rquant weights (conv/linear only) down-scaled so
  // the maximum conv/linear weight matches the clipped model's.
  float rq_max = 0.0f, clip_max = 0.0f;
  for (Param* p : rquant.params()) {
    if (p->kind == ParamKind::kWeight) rq_max = std::max(rq_max, p->value.abs_max());
  }
  for (Param* p : clipped.params()) {
    if (p->kind == ParamKind::kWeight) {
      clip_max = std::max(clip_max, p->value.abs_max());
    }
  }
  const float factor = clip_max / rq_max;
  Sequential scaled(rquant);
  for (Param* p : scaled.params()) {
    if (p->kind == ParamKind::kWeight) p->value.scale(factor);
  }

  auto row = [&](const std::string& label, Sequential& model) {
    BitErrorConfig c01, c1;
    c01.p = 0.001;
    c1.p = 0.01;
    const QuantScheme scheme = rq.train_cfg.quant;
    const float err = 100.0f * test_error(model, zoo::test_set("c10"), &scheme);
    const RobustResult r01 = robust_error(model, scheme, zoo::rerr_set("c10"),
                                          c01, zoo::default_chips(), 1000);
    const RobustResult r1 = robust_error(model, scheme, zoo::rerr_set("c10"),
                                         c1, zoo::default_chips(), 1000);
    return std::vector<std::string>{label, TablePrinter::fmt(err, 2),
                                    fmt_rerr(r01), fmt_rerr(r1)};
  };

  TablePrinter t({"Model", "Err (%)", "RErr p=0.1%", "RErr p=1%"});
  t.add_row(row("RQuant", rquant));
  t.add_row(row("Clipping_0.15 (trained)", clipped));
  t.add_row(row("RQuant -> scaled x" + TablePrinter::fmt(factor, 2), scaled));
  t.print();
  std::printf(
      "\nPaper shape (Tab. 11): the down-scaled model behaves like the "
      "unscaled RQuant (relative errors are scale-invariant); only TRAINING "
      "with the clipping constraint produces the redundancy that buys "
      "robustness. (Down-scaling conv/linear weights perturbs clean Err "
      "slightly since only normalization layers undo scale.)\n");
  return 0;
}
