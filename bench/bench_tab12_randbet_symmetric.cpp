// Tab. 12: RandBET / Clipping under SYMMETRIC quantization — slightly less
// robust than the asymmetric default, but the methods still work.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 12", "RandBET with symmetric per-layer quantization");

  const std::vector<std::string> sym{"c10_clip015_sym", "c10_randbet015_p1_sym"};
  const std::vector<std::string> asym{"c10_clip150", "c10_randbet015_p1"};
  std::vector<std::string> all = sym;
  all.insert(all.end(), asym.begin(), asym.end());
  zoo::ensure(all);

  const std::vector<double> grid{0.001, 0.005, 0.01, 0.015};
  std::vector<std::string> headers{"Model", "Err (%)"};
  for (double p : grid) {
    headers.push_back("RErr p=" + TablePrinter::fmt(100 * p, 1) + "%");
  }
  TablePrinter t(headers);
  auto add = [&](const std::string& name) {
    std::vector<std::string> row{zoo::spec(name).label,
                                 TablePrinter::fmt(clean_err_pct(name), 2)};
    for (double p : grid) row.push_back(fmt_rerr(rerr(name, p)));
    t.add_row(std::move(row));
  };
  for (const auto& name : sym) add(name);
  t.add_separator();
  for (const auto& name : asym) add(name);
  t.print();
  std::printf(
      "\nPaper shape: symmetric quantization gives up a little robustness vs "
      "the asymmetric default, but clipping + RandBET remain effective — the "
      "methods are quantization-scheme-agnostic.\n");
  return 0;
}
