// Fig. 3 / Fig. 8: structure of the (synthetic) profiled chips — rate vs
// voltage, persistence across voltages, column alignment, and the
// 0-to-1 / 1-to-0 flip-type breakdown. No training.
#include "bench_util.h"

int main() {
  using namespace ber;
  bench::banner("Fig. 3 / Fig. 8", "profiled chip error-map structure");

  const std::vector<std::pair<std::string, ProfiledChipConfig>> chips{
      {"Chip 1 (uniform-like)", ProfiledChipConfig::chip1()},
      {"Chip 2 (column-aligned, 0-to-1 biased)", ProfiledChipConfig::chip2()},
      {"Chip 3 (mildly column-aligned)", ProfiledChipConfig::chip3()}};

  for (const auto& [label, cfg] : chips) {
    ProfiledChip chip(cfg);
    std::printf("%s — %ldx%ld cells\n", label.c_str(), cfg.rows, cfg.cols);
    TablePrinter t({"V/Vmin", "measured p (%)", "0-to-1 share of faults",
                    "vulnerable columns"});
    long vuln_cols = 0;
    for (long c = 0; c < cfg.cols; ++c) vuln_cols += chip.column_vulnerable(c);
    for (double v : {0.92, 0.88, 0.84, 0.80}) {
      t.add_row({TablePrinter::fmt(v, 2),
                 TablePrinter::fmt(100.0 * chip.error_rate_at(v), 3),
                 TablePrinter::fmt(chip.set1_share_at(v), 2),
                 std::to_string(vuln_cols) + "/" + std::to_string(cfg.cols)});
    }
    t.print();

    // Persistence check (Fig. 3: errors at higher voltage are a subset).
    long hi_faults = 0, persistent = 0;
    for (long r = 0; r < std::min(cfg.rows, 512L); ++r) {
      for (long c = 0; c < cfg.cols; ++c) {
        if (chip.is_faulty(r, c, 0.88)) {
          ++hi_faults;
          if (chip.is_faulty(r, c, 0.84)) ++persistent;
        }
      }
    }
    std::printf("persistence: %ld/%ld faults at 0.88 Vmin also present at "
                "0.84 Vmin\n\n",
                persistent, hi_faults);
  }
  std::printf("Paper shape: lower voltage = strictly more errors; chip 2 "
              "clusters along columns with dominant 0-to-1 flips.\n");
  return 0;
}
