// Tab. 2: weight clipping sweep with confidences, plus the label smoothing
// control that destroys the effect (the logit-margin mechanism).
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 2", "weight clipping & label smoothing (CIFAR10 analog)");

  const std::vector<std::string> clip{"c10_rquant", "c10_clip300",
                                      "c10_clip200", "c10_clip150", "c10_clip100"};
  const std::vector<std::string> ls{"c10_clip200_ls", "c10_clip150_ls"};
  std::vector<std::string> all = clip;
  all.insert(all.end(), ls.begin(), ls.end());
  zoo::ensure(all);

  TablePrinter t({"Model", "Err (%)", "Conf (%)", "Conf p=1% (%)",
                  "RErr p=0.1% (%)", "RErr p=1% (%)"});
  auto add = [&](const std::string& name) {
    const zoo::Spec& s = zoo::spec(name);
    Sequential& model = zoo::get(name);
    // Clean confidence on the quantized deployment weights.
    const auto params = model.params();
    WeightStash stash;
    stash.save(params);
    NetQuantizer q(s.train_cfg.quant);
    q.write_dequantized(q.quantize(params), params);
    const EvalResult clean = evaluate(model, zoo::test_set(s.dataset));
    stash.restore(params);

    const RobustResult r01 = rerr(name, 0.001);
    const RobustResult r1 = rerr(name, 0.01);
    t.add_row({s.label, TablePrinter::fmt(100.0 * clean.error, 2),
               TablePrinter::fmt(100.0 * clean.confidence, 2),
               TablePrinter::fmt(100.0 * r1.mean_confidence, 2),
               fmt_rerr(r01), fmt_rerr(r1)});
  };
  for (const auto& name : clip) add(name);
  t.add_separator();
  for (const auto& name : ls) add(name);
  t.print();
  std::printf(
      "\nPaper shape: smaller wmax -> RErr at p=1%% falls sharply, clean Err "
      "creeps up, confidence gap (clean vs p=1%%) closes; label smoothing "
      "(+LS) keeps clean Err but forfeits most robustness.\n");
  return 0;
}
