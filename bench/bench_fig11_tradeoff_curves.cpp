// Fig. 11: individual model trade-off curves (clean error vs robustness) for
// the clipping/RandBET grid, 8-bit and 4-bit — the per-model view behind
// Fig. 7's per-rate best.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Fig. 11", "per-model trade-off curves (8-bit and 4-bit)");

  const std::vector<std::string> m8{"c10_rquant",     "c10_clip300",
                                    "c10_clip200",    "c10_clip150",
                                    "c10_clip100",    "c10_randbet015_p1",
                                    "c10_randbet01_p15"};
  const std::vector<std::string> m4{"c10_clip015_m4", "c10_randbet015_p1_m4"};
  std::vector<std::string> all = m8;
  all.insert(all.end(), m4.begin(), m4.end());
  zoo::ensure(all);

  auto table_for = [&](const std::vector<std::string>& names,
                       const std::string& title) {
    std::printf("%s\n", title.c_str());
    std::vector<std::string> headers{"Model", "Err (%)"};
    for (double p : c10_p_grid()) {
      headers.push_back("p=" + TablePrinter::fmt(100 * p, 2) + "%");
    }
    TablePrinter t(headers);
    for (const auto& name : names) {
      std::vector<std::string> row{zoo::spec(name).label,
                                   TablePrinter::fmt(clean_err_pct(name), 2)};
      for (double p : c10_p_grid()) {
        row.push_back(TablePrinter::fmt(100.0 * rerr(name, p).mean_rerr, 2));
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\n");
  };

  table_for(m8, "8-bit models (CIFAR10 analog):");
  table_for(m4, "4-bit models (CIFAR10 analog):");
  std::printf(
      "Paper shape: smaller wmax / larger training p trades clean Err for "
      "robustness at high rates; in low-voltage operation only RErr "
      "matters.\n");
  return 0;
}
