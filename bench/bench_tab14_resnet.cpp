// Tab. 14: the recipe transfers to residual architectures.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 14", "Clipping / RandBET on a residual architecture");

  const std::vector<std::string> models{
      "c10_resnet_rquant", "c10_resnet_clip015", "c10_resnet_randbet015_p1"};
  zoo::ensure(models);

  TablePrinter t({"Model", "Err (%)", "RErr p=0.5%", "RErr p=1.5%"});
  for (const auto& name : models) {
    t.add_row({zoo::spec(name).label, TablePrinter::fmt(clean_err_pct(name), 2),
               fmt_rerr(rerr(name, 0.005)), fmt_rerr(rerr(name, 0.015))});
  }
  t.print();
  std::printf(
      "\nPaper shape (Tab. 14): same ordering as SimpleNet — RQuant "
      "collapses at high p, clipping contains it, RandBET wins.\n");
  return 0;
}
