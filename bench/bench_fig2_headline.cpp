// Fig. 2: headline robustness curves on the CIFAR10 analog — RErr vs p for
// Normal -> RQuant -> +Clipping -> +RandBET, plus the best 8-bit and 4-bit
// models per rate (the Pareto frontier).
#include <algorithm>

#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Fig. 2", "robustness to random bit errors (CIFAR10 analog)");

  const std::vector<std::string> curves{"c10_normal", "c10_rquant",
                                        "c10_clip150", "c10_randbet015_p1"};
  const std::vector<std::string> m4{"c10_clip015_m4", "c10_randbet015_p1_m4"};
  std::vector<std::string> all = curves;
  all.insert(all.end(), m4.begin(), m4.end());
  zoo::ensure(all);

  std::vector<std::string> headers{"Model (8 bit)", "Err (%)"};
  for (double p : c10_p_grid()) {
    headers.push_back("RErr p=" + TablePrinter::fmt(100 * p, 2) + "%");
  }
  TablePrinter t(headers);
  auto add_model = [&](const std::string& name) {
    std::vector<std::string> row{zoo::spec(name).label,
                                 TablePrinter::fmt(clean_err_pct(name), 2)};
    for (double p : c10_p_grid()) row.push_back(fmt_rerr(rerr(name, p)));
    t.add_row(std::move(row));
  };
  for (const auto& name : curves) add_model(name);
  t.add_separator();
  for (const auto& name : m4) add_model(name);
  t.print();

  // Pareto frontier: best 8-bit model per rate.
  std::printf("\nBest (lowest RErr) 8-bit model per bit error rate:\n");
  TablePrinter best({"p (%)", "Best model", "RErr (%)"});
  for (double p : c10_p_grid()) {
    double lo = 1e9;
    std::string who;
    for (const auto& name : curves) {
      const double r = 100.0 * rerr(name, p).mean_rerr;
      if (r < lo) {
        lo = r;
        who = zoo::spec(name).label;
      }
    }
    best.add_row({TablePrinter::fmt(100 * p, 2), who, TablePrinter::fmt(lo, 2)});
  }
  best.print();
  std::printf(
      "\nExpected shape: Normal collapses first, RQuant later, Clipping "
      "holds to ~0.5%%, RandBET dominates at high p.\n");
  return 0;
}
