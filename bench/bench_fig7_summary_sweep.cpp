// Fig. 7: best-per-method RErr vs bit error rate on all three datasets
// (CIFAR10 / CIFAR100 / MNIST analogs).
//
// Thin driver over the declarative experiment API: one api::Experiment per
// dataset sweeps every model of every method across the whole p grid (one
// fault-list build per chip); the best-per-method reduction happens on the
// Report. The CIFAR10 sweep also ships as configs/fig7_c10.json.
#include <algorithm>

#include "bench_util.h"

namespace {

using namespace ber;
using namespace ber::bench;

using MethodGroups =
    std::vector<std::pair<std::string, std::vector<std::string>>>;

void sweep(const std::string& title, const MethodGroups& methods,
           const std::vector<double>& grid) {
  std::printf("%s\n", title.c_str());

  api::Experiment experiment("fig7");
  for (const auto& [label, names] : methods) {
    for (const auto& name : names) experiment.zoo(name);
  }
  const api::Report report = experiment.fault("random", Json::object())
                                 .rate_grid(grid)
                                 .clean_err(false)
                                 .run();
  // Index the report rows by zoo name for the per-method reduction.
  const auto rerr_of = [&](const std::string& name, std::size_t point) {
    for (const api::ModelReport& m : report.models) {
      if (m.name == name) return 100.0 * m.points[point].result.mean_rerr;
    }
    throw std::logic_error("fig7: model missing from report: " + name);
  };

  std::vector<std::string> headers{"Method (best model per p)"};
  for (double p : grid) {
    headers.push_back("p=" + TablePrinter::fmt(100 * p, 100 * p < 0.01 ? 3 : 2) +
                      "%");
  }
  TablePrinter t(headers);
  for (const auto& [label, names] : methods) {
    std::vector<std::string> row{label};
    for (std::size_t i = 0; i < grid.size(); ++i) {
      double lo = 1e9;
      for (const auto& name : names) lo = std::min(lo, rerr_of(name, i));
      row.push_back(TablePrinter::fmt(lo, 2));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Fig. 7", "best-per-method RErr vs p on all three datasets");

  const MethodGroups c10{
      {"Normal", {"c10_normal"}},
      {"RQuant", {"c10_rquant"}},
      {"+Clipping", {"c10_clip300", "c10_clip200", "c10_clip150", "c10_clip100"}},
      {"+RandBET",
       {"c10_randbet015_p1", "c10_randbet01_p15", "c10_randbet015_p1_m4"}}};
  const MethodGroups c100{
      {"RQuant", {"c100_rquant"}},
      {"+Clipping", {"c100_clip015"}},
      {"+RandBET", {"c100_randbet015_p05"}}};
  const MethodGroups mnist{
      {"RQuant", {"mnist_rquant"}},
      {"+Clipping", {"mnist_clip01"}},
      {"+RandBET", {"mnist_randbet01_p5", "mnist_randbet01_p10"}}};

  std::vector<std::string> all;
  for (const auto& group : {c10, c100, mnist}) {
    for (const auto& [label, names] : group) {
      all.insert(all.end(), names.begin(), names.end());
    }
  }
  zoo::ensure(all);

  sweep("CIFAR10 analog (RErr %, m=8/4):", c10, c10_p_grid());
  sweep("CIFAR100 analog (RErr %):", c100, c100_p_grid());
  sweep("MNIST analog (RErr %):", mnist, mnist_p_grid());

  std::printf(
      "Paper shape: method ordering Normal < RQuant < +Clipping < +RandBET "
      "at every p; MNIST tolerates ~10x higher rates; CIFAR100 is tighter "
      "than CIFAR10.\n");
  return 0;
}
