// Fig. 7: best-per-method RErr vs bit error rate on all three datasets
// (CIFAR10 / CIFAR100 / MNIST analogs).
#include <algorithm>

#include "bench_util.h"

namespace {

using namespace ber;
using namespace ber::bench;

void sweep(const std::string& title,
           const std::vector<std::pair<std::string, std::vector<std::string>>>&
               methods,
           const std::vector<double>& grid) {
  std::printf("%s\n", title.c_str());
  std::vector<std::string> headers{"Method (best model per p)"};
  for (double p : grid) {
    headers.push_back("p=" + TablePrinter::fmt(100 * p, 100 * p < 0.01 ? 3 : 2) +
                      "%");
  }
  TablePrinter t(headers);
  for (const auto& [label, names] : methods) {
    // One fault sweep per model covers the whole grid; the method's number
    // at each p is the best model's.
    std::vector<std::vector<RobustResult>> per_model;
    per_model.reserve(names.size());
    for (const auto& name : names) per_model.push_back(rerr_sweep(name, grid));
    std::vector<std::string> row{label};
    for (std::size_t i = 0; i < grid.size(); ++i) {
      double lo = 1e9;
      for (const auto& results : per_model) {
        lo = std::min(lo, 100.0 * results[i].mean_rerr);
      }
      row.push_back(TablePrinter::fmt(lo, 2));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Fig. 7", "best-per-method RErr vs p on all three datasets");

  const std::vector<std::pair<std::string, std::vector<std::string>>> c10{
      {"Normal", {"c10_normal"}},
      {"RQuant", {"c10_rquant"}},
      {"+Clipping", {"c10_clip300", "c10_clip200", "c10_clip150", "c10_clip100"}},
      {"+RandBET",
       {"c10_randbet015_p1", "c10_randbet01_p15", "c10_randbet015_p1_m4"}}};
  const std::vector<std::pair<std::string, std::vector<std::string>>> c100{
      {"RQuant", {"c100_rquant"}},
      {"+Clipping", {"c100_clip015"}},
      {"+RandBET", {"c100_randbet015_p05"}}};
  const std::vector<std::pair<std::string, std::vector<std::string>>> mnist{
      {"RQuant", {"mnist_rquant"}},
      {"+Clipping", {"mnist_clip01"}},
      {"+RandBET", {"mnist_randbet01_p5", "mnist_randbet01_p10"}}};

  std::vector<std::string> all;
  for (const auto& group : {c10, c100, mnist}) {
    for (const auto& [label, names] : group) {
      all.insert(all.end(), names.begin(), names.end());
    }
  }
  zoo::ensure(all);

  sweep("CIFAR10 analog (RErr %, m=8/4):", c10, c10_p_grid());
  sweep("CIFAR100 analog (RErr %):", c100, c100_p_grid());
  sweep("MNIST analog (RErr %):", mnist, mnist_p_grid());

  std::printf(
      "Paper shape: method ordering Normal < RQuant < +Clipping < +RandBET "
      "at every p; MNIST tolerates ~10x higher rates; CIFAR100 is tighter "
      "than CIFAR10.\n");
  return 0;
}
