// Injection-throughput microbenchmark for the random bit error hot path.
//
// Compares, at p in {1e-4, 1e-3, 1e-2}:
//   * scalar  — the seed per-(weight,bit) scalar loop
//     (inject_random_bit_errors_scalar), one hash per coordinate;
//   * build   — constructing a ChipFaultList (the once-per-chip hash sweep);
//   * apply   — applying a prebuilt ChipFaultList (the steady-state cost the
//     evaluator pays per batch / voltage / rate of a trial);
//   * build_mt / apply_mt — the same two on the intra-tensor sharded path
//     with default_threads() workers. The snapshot is ONE dominant tensor,
//     exactly the case per-tensor parallelism could not split.
//
// Emits a single JSON object (core/json) on stdout so future PRs can track
// the hot path; `apply_speedup_vs_scalar` is the acceptance number (>= 5x at
// p <= 1e-2).
#include <chrono>
#include <cstdio>
#include <vector>

#include "biterror/injector.h"
#include "core/json.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "quant/quantizer.h"

namespace {

using namespace ber;
using Clock = std::chrono::steady_clock;

constexpr std::size_t kWeights = 2'000'000;
constexpr int kBits = 8;

NetSnapshot make_snapshot() {
  Rng rng(1);
  std::vector<float> w(kWeights);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  NetSnapshot snap;
  snap.tensors.push_back(quantize(w, QuantScheme::rquant(kBits)));
  snap.offsets.push_back(0);
  return snap;
}

// Runs fn repeatedly until ~0.3s elapsed (at least twice); returns seconds
// per call.
template <typename Fn>
double seconds_per_call(const Fn& fn) {
  fn();  // warm-up
  int iters = 0;
  const auto start = Clock::now();
  double elapsed = 0.0;
  do {
    fn();
    ++iters;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (elapsed < 0.3 || iters < 2);
  return elapsed / iters;
}

}  // namespace

int main() {
  NetSnapshot snap = make_snapshot();
  const double total_words = static_cast<double>(kWeights);
  const int threads = default_threads();

  Json report = Json::object();
  report.set("bench", "injection");
  report.set("weights", static_cast<long>(kWeights));
  report.set("bits", kBits);
  report.set("threads", threads);
  Json results = Json::array();
  for (double p : {1e-4, 1e-3, 1e-2}) {
    BitErrorConfig cfg;
    cfg.p = p;  // default flip-only mix: injection is an involution, so
                // repeated in-place application is safe for timing.
    const double scalar_sec = seconds_per_call(
        [&] { inject_random_bit_errors_scalar(snap, cfg, /*chip=*/7); });
    const double build_sec = seconds_per_call(
        [&] { ChipFaultList list(snap, cfg, /*chip_seed=*/7, p); });
    const double build_mt_sec = seconds_per_call(
        [&] { ChipFaultList list(snap, cfg, /*chip_seed=*/7, p, threads); });
    const ChipFaultList list(snap, cfg, 7, p);
    const double apply_sec = seconds_per_call([&] { list.apply(snap, p); });
    const double apply_mt_sec =
        seconds_per_call([&] { list.apply(snap, p, threads); });

    Json row = Json::object();
    row.set("p", p);
    row.set("faults", static_cast<long>(list.size()));
    row.set("scalar_words_per_sec", total_words / scalar_sec);
    row.set("build_words_per_sec", total_words / build_sec);
    row.set("apply_words_per_sec", total_words / apply_sec);
    row.set("build_mt_words_per_sec", total_words / build_mt_sec);
    row.set("apply_mt_words_per_sec", total_words / apply_mt_sec);
    row.set("apply_speedup_vs_scalar", scalar_sec / apply_sec);
    row.set("build_mt_speedup", build_sec / build_mt_sec);
    results.push_back(std::move(row));
  }
  report.set("results", std::move(results));
  std::printf("%s\n", report.dump().c_str());
  return 0;
}
