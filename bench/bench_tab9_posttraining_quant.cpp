// Tab. 9: clipping helps even with post-training quantization (models
// trained in float, quantized afterwards), though QAT is better.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 9", "post-training quantization vs QAT, with/without clipping");

  zoo::ensure({"c10_noqat", "c10_noqat_clip015", "c10_rquant", "c10_clip150"});

  const std::vector<double> grid{0.001, 0.005, 0.01};
  std::vector<std::string> headers{"Model", "Err (%)"};
  for (double p : grid) {
    headers.push_back("RErr p=" + TablePrinter::fmt(100 * p, 1) + "%");
  }
  TablePrinter t(headers);
  auto add = [&](const std::string& name) {
    std::vector<std::string> row{zoo::spec(name).label,
                                 TablePrinter::fmt(clean_err_pct(name), 2)};
    for (double p : grid) row.push_back(fmt_rerr(rerr(name, p)));
    t.add_row(std::move(row));
  };
  add("c10_noqat");
  add("c10_noqat_clip015");
  t.add_separator();
  add("c10_rquant");
  add("c10_clip150");
  t.print();
  std::printf(
      "\nPaper shape: clipping's robustness benefit survives post-training "
      "quantization; quantization-aware training shaves off a bit more "
      "RErr.\n");
  return 0;
}
