#include "bench_util.h"

#include <algorithm>
#include <cstdio>

namespace ber::bench {

void banner(const std::string& paper_ref, const std::string& what) {
  // Determinism guard: paper benches pin the reference backend so a
  // BER_BACKEND override (or a future default flip) can never let blocked-
  // kernel FP reassociation silently shift published numbers.
  kernels::set_default_backend("reference");
  std::printf("=== %s — %s ===\n", paper_ref.c_str(), what.c_str());
  std::printf(
      "(reproduction on synthetic data/scaled models; compare SHAPE, not "
      "absolute values — see EXPERIMENTS.md)\n\n");
}

double clean_err_pct(const std::string& name) {
  const zoo::Spec& s = zoo::spec(name);
  Sequential& model = zoo::get(name);
  const QuantScheme scheme = s.train_cfg.quant;
  return 100.0 * test_error(model, zoo::test_set(s.dataset), &scheme);
}

RobustResult rerr(const std::string& name, double p) {
  return rerr_with_scheme(name, zoo::scheme_of(name), p);
}

RobustResult rerr_with_scheme(const std::string& name,
                              const QuantScheme& scheme, double p) {
  // One-point declarative experiment: zoo model, "random" fault at rate p,
  // the historical seed base. Identical numbers to the pre-API
  // robust_error() path (regression-pinned in tests/test_api.cpp).
  Json params = Json::object();
  params.set("p", p);
  params.set("seed_base", 1000);
  const api::Report report = api::Experiment("bench_rerr")
                                 .zoo(name)
                                 .fault("random", std::move(params))
                                 .trials(zoo::default_chips())
                                 .clean_err(false)
                                 .eval_quant(scheme)
                                 .run();
  return report.models.front().points.front().result;
}

std::vector<RobustResult> rerr_sweep(const std::string& name,
                                     const std::vector<double>& grid) {
  // The whole p grid in one declarative experiment: the Runner quantizes
  // once and builds each chip's fault list once at max(grid)
  // (RobustnessEvaluator::run_rate_sweep); element i is bit-identical to
  // rerr(name, grid[i]).
  const api::Report report = api::Experiment("bench_rerr_sweep")
                                 .zoo(name)
                                 .fault("random", Json::object())
                                 .rate_grid(grid)
                                 .trials(zoo::default_chips())
                                 .clean_err(false)
                                 .run();
  std::vector<RobustResult> out;
  out.reserve(report.models.front().points.size());
  for (const api::ReportPoint& pt : report.models.front().points) {
    out.push_back(pt.result);
  }
  return out;
}

std::string fmt_rerr(const RobustResult& r) {
  return TablePrinter::fmt_pm(100.0 * r.mean_rerr, 100.0 * r.std_rerr);
}

const std::vector<double>& c10_p_grid() {
  static const std::vector<double> g{0.0001, 0.0005, 0.001, 0.005,
                                     0.01,   0.015,  0.025};
  return g;
}

const std::vector<double>& c100_p_grid() {
  static const std::vector<double> g{0.00001, 0.0001, 0.0005, 0.001, 0.005,
                                     0.01};
  return g;
}

const std::vector<double>& mnist_p_grid() {
  static const std::vector<double> g{0.01, 0.05, 0.10, 0.15, 0.20};
  return g;
}

}  // namespace ber::bench
