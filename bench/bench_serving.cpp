// Serving-runtime bench: the full train -> plan -> serve pipeline as one
// JSON report (built on core/json).
//
//   * planner   — voltage-grid sweep + SLO: the chosen below-Vmin operating
//     point and its modeled energy saving (acceptance: >= 20% saving with
//     serving error inside the band);
//   * serving   — single-replica batch-1 serial throughput vs the
//     dynamic-batching multi-replica pool (throughput scaling, p50/p99
//     latency, mean coalesced batch size, energy per inference);
//   * health    — a forced degradation below the plan and the canary's
//     step-up recovery.
//
// The trained model is cached as a serve checkpoint under the artifacts
// dir, so reruns skip training. All accuracy/planning numbers are
// bit-reproducible for the fixed seed; only the throughput/latency timings
// vary run to run. BER_FAST=1 shrinks training and traffic to smoke scale.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <thread>
#include <vector>

#include "ber.h"

namespace {

using namespace ber;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

int main() {
  // The deterministic JSON fields (planner grid, chosen operating point,
  // degradation drill) are bit-reproducible only on the pinned reference
  // backend; throughput numbers would survive a backend switch, the cached
  // training checkpoint would not.
  kernels::set_default_backend("reference");
  const bool fast = fast_mode();

  // ------------------------------------------------------------- model ----
  SyntheticConfig data_cfg = SyntheticConfig::cifar10();
  data_cfg.n_train = fast ? 800 : 1500;
  data_cfg.n_test = fast ? 200 : 500;
  const Dataset train_set = make_synthetic(data_cfg, true);
  const Dataset test_set = make_synthetic(data_cfg, false);

  ModelConfig mc;
  mc.width = 8;
  auto model = build_model(mc);
  TrainConfig tc;
  tc.method = Method::kRandBET;
  tc.wmax = 0.15f;
  tc.p_train = 0.015;
  tc.epochs = fast ? 14 : 30;
  tc.lr_warmup_epochs = fast ? 1 : 3;

  ensure_dir(artifacts_dir());
  // Cache key carries the training config, so editing the recipe (or fast
  // mode changing it) invalidates the cache instead of silently reporting a
  // stale model; the stored scheme is checked against the recipe on load.
  char ckpt_name[128];
  std::snprintf(ckpt_name, sizeof(ckpt_name),
                "/serve_randbet_w%d_e%d_p%g_%s.ckpt", mc.width, tc.epochs,
                tc.p_train, tc.quant.str().c_str());
  const std::string ckpt = artifacts_dir() + ckpt_name;
  bool cached = file_exists(ckpt);
  if (cached) {
    if (load_checkpoint(ckpt, *model) != tc.quant) {
      std::fprintf(stderr, "stale checkpoint scheme, retraining\n");
      cached = false;
    }
  }
  if (!cached) {
    train(*model, train_set, test_set, tc);
    save_checkpoint(ckpt, *model, tc.quant);
  }
  const QuantScheme scheme = tc.quant;
  const double clean_err = test_error(*model, test_set, &scheme);

  // ----------------------------------------------------------- planner ----
  SloConfig slo;
  slo.max_rerr = clean_err + 0.04;
  slo.z = 2.0;
  // The last two grid points (p ~ 7% / 33%) are meant to FAIL qualification:
  // they document where the SLO cuts off and give the health drill genuinely
  // degraded operating points below the plan.
  const std::vector<double> grid_v = {1.0,  0.95, 0.92, 0.89, 0.86,
                                      0.83, 0.8,  0.77, 0.74};
  const int n_chips = fast ? 2 : 4;
  OperatingPointPlanner planner(*model, scheme);
  RandomBitErrorModel fault({/*p=*/0.02});
  const OperatingPointPlan plan =
      planner.plan(fault, test_set, grid_v, slo, n_chips);

  Json report = Json::object();
  report.set("bench", "serving");
  report.set("fast", fast);
  report.set("train_cached", cached);
  report.set("clean_err", clean_err);
  {
    Json s = Json::object();
    s.set("max_rerr", slo.max_rerr);
    s.set("z", slo.z);
    report.set("slo", std::move(s));
  }
  report.set("planner", plan_to_json(plan, slo));

  // ----------------------------------------------------------- serving ----
  const int n_replicas = 3;
  const long n_requests = fast ? 400 : 2000;
  BatchQueueConfig qcfg;
  qcfg.max_batch = 32;
  qcfg.max_wait_us = 200;

  // Pre-generate the request tensors so producers measure the runtime, not
  // dataset slicing.
  std::vector<Tensor> request_images;
  request_images.reserve(static_cast<std::size_t>(n_requests));
  {
    Tensor image;
    std::vector<int> labels;
    for (long i = 0; i < n_requests; ++i) {
      const long j = i % test_set.size();
      test_set.batch(j, j + 1, image, labels);
      request_images.push_back(image.reshaped(
          {image.shape(1), image.shape(2), image.shape(3)}));
    }
  }

  // Serial baseline: one replica, one image per forward pass.
  std::vector<Replica> serial_fleet = planner.deploy_fleet(fault, plan, 1);
  const auto serial_start = Clock::now();
  for (long i = 0; i < n_requests; ++i) {
    const Tensor& img = request_images[static_cast<std::size_t>(i)];
    Tensor probs = serial_fleet[0].forward(
        img.reshaped({1, img.shape(0), img.shape(1), img.shape(2)}));
    softmax_rows(probs);
    (void)argmax_row(probs, 0);
  }
  const double serial_sec = seconds_since(serial_start);

  // The pool: n_replicas fault-injected replicas, chips 0..n-1 (the same
  // trials the planner swept), dynamic batching. No monitor here — canary
  // forwards would pollute the throughput window; the health section runs
  // the monitored scenario.
  ReplicaPool pool(planner.deploy_fleet(fault, plan, n_replicas), qcfg);

  const int n_producers = 4;
  const auto pool_start = Clock::now();
  std::vector<std::future<std::vector<Prediction>>> futures(
      static_cast<std::size_t>(n_requests));
  std::vector<std::thread> producers;
  for (int t = 0; t < n_producers; ++t) {
    producers.emplace_back([&, t] {
      for (long i = t; i < n_requests; i += n_producers) {
        futures[static_cast<std::size_t>(i)] =
            pool.submit(request_images[static_cast<std::size_t>(i)]);
      }
    });
  }
  for (auto& p : producers) p.join();
  long answered = 0;
  for (auto& f : futures) answered += static_cast<long>(f.get().size());
  const double pool_sec = seconds_since(pool_start);
  pool.drain();
  const ServingStats stats = pool.stats();

  // Measured serving error: deterministic per-replica canary on the full
  // test set (request->replica routing is timing-dependent; this is not).
  double serving_err = 0.0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    serving_err += pool.replica(i).canary(test_set).error;
  }
  serving_err /= static_cast<double>(pool.size());
  double fleet_energy = 0.0;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    fleet_energy += planner.energy().energy_per_access(
        pool.replica(i).point().voltage);
  }
  fleet_energy /= static_cast<double>(pool.size());

  // Scaling is bounded by the cores actually available: on a single-core
  // container the pool can only match serial throughput (efficiency ~1 shows
  // the runtime adds no overhead); the replicas deliver wall-clock scaling
  // on multi-core hosts (e.g. the CI bench-smoke artifacts).
  const int cores = default_threads();
  const double ideal =
      static_cast<double>(std::min(n_replicas, cores));
  {
    Json sj = Json::object();
    sj.set("n_replicas", n_replicas);
    sj.set("threads_available", cores);
    sj.set("max_batch", qcfg.max_batch);
    sj.set("max_wait_us", qcfg.max_wait_us);
    sj.set("requests", n_requests);
    sj.set("answered", answered);
    sj.set("serial_imgs_per_sec", n_requests / serial_sec);
    sj.set("pool_imgs_per_sec", n_requests / pool_sec);
    sj.set("throughput_scaling", serial_sec / pool_sec);
    sj.set("pool_efficiency", serial_sec / pool_sec / ideal);
    sj.set("mean_batch", stats.mean_batch_images);
    sj.set("p50_latency_us", stats.p50_latency_us);
    sj.set("p99_latency_us", stats.p99_latency_us);
    sj.set("serving_err", serving_err);
    sj.set("slo_band", slo.max_rerr);
    sj.set("slo_ok", serving_err <= slo.max_rerr);
    sj.set("fleet_energy_per_access", fleet_energy);
    sj.set("fleet_energy_saving", 1.0 - fleet_energy);
    report.set("serving", std::move(sj));
  }

  // ------------------------------------------------------------ health ----
  // Force one replica BELOW the plan (the degradation drill) and let the
  // canary walk it back up the grid.
  HealthConfig hc;
  hc.max_err = slo.max_rerr;
  hc.period_batches = 8;
  std::vector<Replica> drill = planner.deploy_fleet(fault, plan, 1);
  Replica& sick = drill[0];
  sick.deploy(plan.grid.size() - 1);
  const double degraded_v = sick.point().voltage;
  const double degraded_err =
      sick.canary(test_set.head(fast ? 60 : 150)).error;
  HealthMonitor drill_monitor(test_set.head(fast ? 60 : 150), hc);
  int steps = 0;
  while (drill_monitor.check(sick).tripped && steps < 16) ++steps;
  {
    Json hj = Json::object();
    hj.set("degraded_v", degraded_v);
    hj.set("degraded_err", degraded_err);
    hj.set("redeploys", steps);
    hj.set("recovered_v", sick.point().voltage);
    hj.set("recovered_err",
           static_cast<double>(
               sick.canary(test_set.head(fast ? 60 : 150)).error));
    hj.set("recovered", !drill_monitor.events().back().tripped);
    report.set("health", std::move(hj));
  }
  std::printf("%s\n", report.dump().c_str());
  return answered == n_requests ? 0 : 1;
}
