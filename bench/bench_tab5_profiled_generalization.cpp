// Tab. 5 / Tab. 15: generalization of RandBET to profiled chips it has never
// seen — including chip 2's column-aligned, 0-to-1-biased distribution.
//
// Thin driver over the declarative experiment API: one api::Experiment per
// chip, the voltage grid swept through the evaluator's persistence fast
// path (one cell-lookup sweep per mapping serves both voltages). The chip-2
// scenario also ships as configs/tab5_profiled.json.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 5 / Tab. 15", "generalization to (synthetic) profiled chips");

  const std::vector<std::string> models{"c10_rquant", "c10_clip100",
                                        "c10_randbet01_p15"};
  zoo::ensure(models);

  const std::vector<std::pair<std::string, std::string>> chips{
      {"Chip 1", "chip1"}, {"Chip 2", "chip2"}};
  const std::vector<double> voltages{0.88, 0.84};

  for (const auto& [chip_label, chip_name] : chips) {
    // The chip the experiment will build (for the banner rates only; the
    // Runner constructs its own from the same preset).
    const ProfiledChipConfig cfg = chip_name == "chip1"
                                       ? ProfiledChipConfig::chip1()
                                       : ProfiledChipConfig::chip2();
    ProfiledChip chip(cfg);
    std::printf("%s (column-vulnerable fraction %.2f, 0-to-1 share at 0.84 "
                "Vmin: %.2f)\n",
                chip_label.c_str(), cfg.vulnerable_column_fraction,
                chip.set1_share_at(0.84));

    api::Experiment experiment("tab5_" + chip_name);
    for (const auto& name : models) experiment.zoo(name);
    Json params = Json::object();
    params.set("chip", chip_name);
    const api::Report report = experiment.fault("profiled", std::move(params))
                                   .voltage_grid(voltages)
                                   .clean_err(false)
                                   .run();

    std::vector<std::string> headers{"Model"};
    for (double v : voltages) {
      headers.push_back("RErr @ V/Vmin=" + TablePrinter::fmt(v, 2) + " (p~" +
                        TablePrinter::fmt(100.0 * chip.error_rate_at(v), 2) +
                        "%)");
    }
    TablePrinter t(headers);
    for (const api::ModelReport& m : report.models) {
      std::vector<std::string> row{m.label};
      for (const api::ReportPoint& pt : m.points) {
        row.push_back(fmt_rerr(pt.result));
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: RandBET (trained ONLY on uniform random errors) holds up "
      "on both chips; chip 2's column-aligned errors are harder at matched "
      "rate; RQuant alone collapses at the lower voltage.\n");
  return 0;
}
