// Tab. 5 / Tab. 15: generalization of RandBET to profiled chips it has never
// seen — including chip 2's column-aligned, 0-to-1-biased distribution.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 5 / Tab. 15", "generalization to (synthetic) profiled chips");

  const std::vector<std::string> models{"c10_rquant", "c10_clip100",
                                        "c10_randbet01_p15"};
  zoo::ensure(models);

  const std::vector<std::pair<std::string, ProfiledChipConfig>> chips{
      {"Chip 1", ProfiledChipConfig::chip1()},
      {"Chip 2", ProfiledChipConfig::chip2()}};
  const std::vector<double> voltages{0.88, 0.84};
  const int n_offsets = zoo::default_chips();

  for (const auto& [chip_label, cfg] : chips) {
    ProfiledChip chip(cfg);
    std::printf("%s (column-vulnerable fraction %.2f, 0-to-1 share at 0.84 "
                "Vmin: %.2f)\n",
                chip_label.c_str(), cfg.vulnerable_column_fraction,
                chip.set1_share_at(0.84));
    std::vector<std::string> headers{"Model"};
    for (double v : voltages) {
      headers.push_back("RErr @ V/Vmin=" + TablePrinter::fmt(v, 2) + " (p~" +
                        TablePrinter::fmt(100.0 * chip.error_rate_at(v), 2) +
                        "%)");
    }
    TablePrinter t(headers);
    for (const auto& name : models) {
      const zoo::Spec& s = zoo::spec(name);
      Sequential& model = zoo::get(name);
      // Quantize once per model; reuse the snapshot for every voltage.
      RobustnessEvaluator evaluator(model, s.train_cfg.quant);
      std::vector<std::string> row{s.label};
      for (double v : voltages) {
        const RobustResult r = evaluator.run(
            ProfiledChipModel(chip, v), zoo::rerr_set(s.dataset), n_offsets);
        row.push_back(fmt_rerr(r));
      }
      t.add_row(std::move(row));
    }
    t.print();
    std::printf("\n");
  }
  std::printf(
      "Paper shape: RandBET (trained ONLY on uniform random errors) holds up "
      "on both chips; chip 2's column-aligned errors are harder at matched "
      "rate; RQuant alone collapses at the lower voltage.\n");
  return 0;
}
