// Tab. 17 + App. C.2: the Prop. 1 guarantee — analytic bound table plus an
// empirical stress test with a large number of bit-error patterns.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 17 / Prop. 1", "guarantee on the RErr estimate");

  std::printf("Analytic deviation bound eps(n, l, delta=0.01):\n");
  TablePrinter bound({"n (test examples)", "l (patterns)", "eps (%)"});
  for (const auto& [n, l] : std::vector<std::pair<long, long>>{
           {10000, 1000000}, {100000, 1000000}, {500, 50}, {500, 1000}}) {
    bound.add_row({std::to_string(n), std::to_string(l),
                   TablePrinter::fmt(100.0 * prop1_epsilon(n, l, 0.01), 2)});
  }
  bound.print();
  std::printf("(paper: n=1e4, l=1e6 -> 4.1%%; n=1e5 -> 1.7%%)\n\n");

  zoo::ensure({"c10_clip100"});
  Sequential& model = zoo::get("c10_clip100");
  const zoo::Spec& s = zoo::spec("c10_clip100");
  const Dataset& data = zoo::rerr_set(s.dataset);
  BitErrorConfig cfg;
  cfg.p = 0.01;

  std::printf("Empirical stress test (Clipping_0.1, p=1%%):\n");
  TablePrinter t({"l (patterns)", "RErr (%)", "std (%)"});
  for (int l : {5, 20, fast_mode() ? 40 : 100}) {
    const RobustResult r =
        robust_error(model, s.train_cfg.quant, data, cfg, l, 31000);
    t.add_row({std::to_string(l), TablePrinter::fmt(100.0 * r.mean_rerr, 2),
               TablePrinter::fmt(100.0 * r.std_rerr, 2)});
  }
  t.print();
  std::printf(
      "\nPaper shape (Tab. 17): the RErr estimate is stable in l — going "
      "from a handful of patterns to many changes the mean marginally, only "
      "tightening the spread.\n");
  return 0;
}
