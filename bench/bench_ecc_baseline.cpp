// ECC baseline (intro, Sec. 1): SECDED protection of the weight memory vs
// RandBET. SECDED corrects all single-bit errors per 72-bit codeword but at
// p = 1% the probability of >= 2 errors per word is ~13.5% — and those
// uncorrectable words keep their flipped bits (plus occasional
// miscorrection). RandBET needs no extra check bits at all.
//
// Thin driver over the declarative experiment API: the SECDED rows are
// "ecc" fault experiments swept over p with the generic eval.grid (the
// persistent variant also ships as configs/ecc_ablation.json); the
// unprotected rows reuse the rerr_sweep helper (itself API-backed).
#include "bench_util.h"
#include "ecc/secded.h"

namespace {

using namespace ber;
using namespace ber::bench;

// RErr of a zoo model whose 8-bit codes are packed into SECDED-protected
// 64-bit words, across the whole p grid. `persistent` swaps the built-in
// i.i.d. Bernoulli source for the monotone hash-addressed fault model of
// Sec. 3 (reaching data AND check bits).
std::vector<RobustResult> secded_sweep(const std::string& name,
                                       const std::vector<double>& grid,
                                       int chips, bool persistent) {
  Json params = Json::object();
  params.set("persistent", persistent);
  const api::Report report =
      api::Experiment(persistent ? "ecc_persistent" : "ecc_bernoulli")
          .zoo(name)
          .fault("ecc", std::move(params))
          .param_grid("p", grid)
          .trials(chips)
          .clean_err(false)
          .run();
  std::vector<RobustResult> out;
  out.reserve(grid.size());
  for (const api::ReportPoint& pt : report.models.front().points) {
    out.push_back(pt.result);
  }
  return out;
}

}  // namespace

int main() {
  banner("Sec. 1 (ECC discussion)", "SECDED baseline vs RandBET");

  std::printf("Analytic SECDED failure probability (>=2 errors per word):\n");
  TablePrinter a({"p (%)", "per 64-bit word", "per 72-bit codeword"});
  for (double p : {0.001, 0.005, 0.01, 0.025}) {
    a.add_row({TablePrinter::fmt(100 * p, 2),
               TablePrinter::fmt(secded_uncorrectable_probability(p, 64), 4),
               TablePrinter::fmt(secded_uncorrectable_probability(p, 72), 4)});
  }
  a.print();
  std::printf("(paper quotes ~13.5%% at p=1%% for 64-bit words)\n\n");

  zoo::ensure({"c10_rquant", "c10_randbet015_p1"});
  const std::vector<double> grid{0.001, 0.005, 0.01, 0.025};
  std::vector<std::string> headers{"Protection scheme", "mem overhead"};
  for (double p : grid) {
    headers.push_back("RErr p=" + TablePrinter::fmt(100 * p, 1) + "%");
  }
  TablePrinter t(headers);
  {
    std::vector<std::string> row{"RQuant, no protection", "0%"};
    for (const RobustResult& r : rerr_sweep("c10_rquant", grid)) {
      row.push_back(fmt_rerr(r));
    }
    t.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"RQuant + SECDED(72,64)", "12.5%"};
    for (const RobustResult& r :
         secded_sweep("c10_rquant", grid, zoo::default_chips(), false)) {
      row.push_back(fmt_rerr(r));
    }
    t.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"RQuant + SECDED, persistent faults",
                                 "12.5%"};
    for (const RobustResult& r :
         secded_sweep("c10_rquant", grid, zoo::default_chips(), true)) {
      row.push_back(fmt_rerr(r));
    }
    t.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"RandBET (no ECC)", "0%"};
    for (const RobustResult& r : rerr_sweep("c10_randbet015_p1", grid)) {
      row.push_back(fmt_rerr(r));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\nShape: SECDED is perfect at low p, but its protection decays once "
      "multi-bit words become common (~13.5%% of words at p=1%%) — while "
      "paying 12.5%% memory overhead. RandBET degrades gracefully with no "
      "overhead, which is the paper's case for training-time robustness.\n");
  return 0;
}
