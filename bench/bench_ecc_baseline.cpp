// ECC baseline (intro, Sec. 1): SECDED protection of the weight memory vs
// RandBET. SECDED corrects all single-bit errors per 72-bit codeword but at
// p = 1% the probability of >= 2 errors per word is ~13.5% — and those
// uncorrectable words keep their flipped bits (plus occasional
// miscorrection). RandBET needs no extra check bits at all.
#include <cmath>

#include "bench_util.h"
#include "ecc/secded.h"

namespace {

using namespace ber;
using namespace ber::bench;

// RErr of a zoo model whose 8-bit codes are packed into SECDED-protected
// 64-bit words: bit errors hit the full 72-bit codeword; decode corrects
// what it can before the weights are deployed.
RobustResult rerr_with_secded(const std::string& name, double p, int chips) {
  const zoo::Spec& s = zoo::spec(name);
  Sequential& model = zoo::get(name);
  NetQuantizer quantizer(s.train_cfg.quant);
  const NetSnapshot base = quantizer.quantize(model.params());

  std::vector<float> errs, confs;
  for (int chip = 0; chip < chips; ++chip) {
    NetSnapshot snap = base;
    Rng rng(hash_mix(7777, static_cast<std::uint64_t>(chip), 1));
    // Pack 8 consecutive 8-bit codes per 64-bit data word, tensor by tensor.
    for (auto& qt : snap.tensors) {
      for (std::size_t w0 = 0; w0 < qt.codes.size(); w0 += 8) {
        std::uint64_t data = 0;
        const std::size_t count = std::min<std::size_t>(8, qt.codes.size() - w0);
        for (std::size_t j = 0; j < count; ++j) {
          data |= static_cast<std::uint64_t>(qt.codes[w0 + j] & 0xFF) << (8 * j);
        }
        SecdedWord word = secded_encode(data);
        for (int bit = 0; bit < 72; ++bit) {
          if (rng.bernoulli(p)) secded_flip(word, bit);
        }
        const SecdedResult decoded = secded_decode(word);
        for (std::size_t j = 0; j < count; ++j) {
          qt.codes[w0 + j] =
              static_cast<std::uint16_t>((decoded.data >> (8 * j)) & 0xFF);
        }
      }
    }
    Sequential clone(model);
    quantizer.write_dequantized(snap, clone.params());
    const EvalResult r = evaluate(clone, zoo::rerr_set(s.dataset));
    errs.push_back(r.error);
    confs.push_back(r.confidence);
  }
  RobustResult out;
  double sum = 0, sq = 0;
  for (float e : errs) {
    sum += e;
    sq += static_cast<double>(e) * e;
  }
  out.per_chip = errs;
  out.mean_rerr = static_cast<float>(sum / errs.size());
  const double var =
      std::max(0.0, sq / errs.size() - (sum / errs.size()) * (sum / errs.size()));
  out.std_rerr = static_cast<float>(
      std::sqrt(var * errs.size() / std::max<std::size_t>(1, errs.size() - 1)));
  return out;
}

}  // namespace

int main() {
  banner("Sec. 1 (ECC discussion)", "SECDED baseline vs RandBET");

  std::printf("Analytic SECDED failure probability (>=2 errors per word):\n");
  TablePrinter a({"p (%)", "per 64-bit word", "per 72-bit codeword"});
  for (double p : {0.001, 0.005, 0.01, 0.025}) {
    a.add_row({TablePrinter::fmt(100 * p, 2),
               TablePrinter::fmt(secded_uncorrectable_probability(p, 64), 4),
               TablePrinter::fmt(secded_uncorrectable_probability(p, 72), 4)});
  }
  a.print();
  std::printf("(paper quotes ~13.5%% at p=1%% for 64-bit words)\n\n");

  zoo::ensure({"c10_rquant", "c10_randbet015_p1"});
  const std::vector<double> grid{0.001, 0.005, 0.01, 0.025};
  std::vector<std::string> headers{"Protection scheme", "mem overhead"};
  for (double p : grid) {
    headers.push_back("RErr p=" + TablePrinter::fmt(100 * p, 1) + "%");
  }
  TablePrinter t(headers);
  {
    std::vector<std::string> row{"RQuant, no protection", "0%"};
    for (double p : grid) row.push_back(fmt_rerr(rerr("c10_rquant", p)));
    t.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"RQuant + SECDED(72,64)", "12.5%"};
    for (double p : grid) {
      row.push_back(fmt_rerr(rerr_with_secded("c10_rquant", p,
                                              zoo::default_chips())));
    }
    t.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"RandBET (no ECC)", "0%"};
    for (double p : grid) row.push_back(fmt_rerr(rerr("c10_randbet015_p1", p)));
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\nShape: SECDED is perfect at low p, but its protection decays once "
      "multi-bit words become common (~13.5%% of words at p=1%%) — while "
      "paying 12.5%% memory overhead. RandBET degrades gracefully with no "
      "overhead, which is the paper's case for training-time robustness.\n");
  return 0;
}
