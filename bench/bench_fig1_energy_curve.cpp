// Fig. 1: bit error rate and normalized SRAM access energy vs supply
// voltage (normalized by Vmin). Pure model evaluation — no training.
#include "bench_util.h"

int main() {
  using namespace ber;
  bench::banner("Fig. 1", "bit error rate & energy vs supply voltage");

  SramEnergyModel model;
  TablePrinter t({"V/Vmin", "Bit Error Rate p (%)", "Energy/Access (norm.)",
                  "Energy Saving (%)"});
  for (double v = 1.00; v >= 0.7499; v -= 0.025) {
    t.add_row({TablePrinter::fmt(v, 3),
               TablePrinter::fmt(100.0 * model.bit_error_rate(v), 5),
               TablePrinter::fmt(model.energy_per_access(v), 3),
               TablePrinter::fmt(100.0 * (1.0 - model.energy_per_access(v)), 1)});
  }
  t.print();

  std::printf("\nOperating points for target bit error rates:\n");
  TablePrinter t2({"p (%)", "V/Vmin", "Energy Saving (%)"});
  for (double p_pct : {0.01, 0.1, 0.5, 1.0, 2.5}) {
    const double p = p_pct / 100.0;
    t2.add_row({TablePrinter::fmt(p_pct, 2),
                TablePrinter::fmt(model.voltage_for_rate(p), 3),
                TablePrinter::fmt(100.0 * model.energy_saving_at_rate(p), 1)});
  }
  t2.print();
  std::printf(
      "\nPaper anchor: ~20%% saving at low p (8-bit safe zone), ~30%% at "
      "p=1%%.\n");
  return 0;
}
