// Tab. 7: clean quantization-aware accuracies per precision / architecture /
// dataset.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 7", "clean Err of quantization-aware training");

  const std::vector<std::string> models{
      "c10_rquant",      "c10_clip015_m4", "c10_rquant_bn", "c10_resnet_rquant",
      "mnist_rquant",    "mnist_randbet01_p5_m2", "c100_rquant"};
  zoo::ensure(models);

  TablePrinter t({"Dataset", "Model", "m (bits)", "Err (%)"});
  for (const auto& name : models) {
    const zoo::Spec& s = zoo::spec(name);
    t.add_row({s.dataset, s.label, std::to_string(s.train_cfg.quant.bits),
               TablePrinter::fmt(clean_err_pct(name), 2)});
  }
  t.print();
  std::printf(
      "\nPaper shape: m=8 is accuracy-neutral; m=4 costs ~1%%; BN slightly "
      "beats GN on clean Err (but loses badly on robustness, Tab. 10); the "
      "MNIST analog stays accurate even at 2 bits.\n");
  return 0;
}
