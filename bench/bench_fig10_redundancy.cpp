// Fig. 10: redundancy metrics — why clipping helps. Clipped models use more
// of their weight range (weight relevance up, zero-weight fraction down) and
// suffer smaller relative weight damage under BErr_p.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Fig. 10", "redundancy metrics of clipping / RandBET (p=1%)");

  const std::vector<std::string> models{"c10_rquant", "c10_randbet_noclip_p1",
                                        "c10_clip150", "c10_clip100"};
  zoo::ensure(models);

  TablePrinter t({"Model", "rel. abs error", "weight relevance",
                  "ReLU relevance", "frac. (near-)zero w", "max |w|"});
  for (const auto& name : models) {
    const zoo::Spec& s = zoo::spec(name);
    Sequential& model = zoo::get(name);
    const RedundancyStats stats = redundancy_stats(
        model, s.train_cfg.quant, zoo::rerr_set(s.dataset), 0.01);
    t.add_row({s.label, TablePrinter::fmt(stats.rel_abs_error, 4),
               TablePrinter::fmt(stats.weight_relevance, 3),
               TablePrinter::fmt(stats.relu_relevance, 3),
               TablePrinter::fmt(stats.frac_zero, 3),
               TablePrinter::fmt(stats.max_abs_weight, 3)});
  }
  t.print();
  std::printf(
      "\nPaper shape (Fig. 10 bottom right): clipping increases weight "
      "relevance and decreases relative abs error; RandBET alone mostly "
      "stretches the tails instead.\n");
  return 0;
}
