// Tab. 13: curricular and alternating RandBET variants — neither beats the
// plain summed-gradient formulation of Alg. 1.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 13", "RandBET variants (curricular / alternating)");

  const std::vector<std::string> models{"c10_randbet015_p1",
                                        "c10_randbet015_p1_curr",
                                        "c10_randbet015_p1_alt"};
  zoo::ensure(models);

  TablePrinter t({"Model", "Err (%)", "RErr p=0.1%", "RErr p=1%"});
  for (const auto& name : models) {
    t.add_row({zoo::spec(name).label, TablePrinter::fmt(clean_err_pct(name), 2),
               fmt_rerr(rerr(name, 0.001)), fmt_rerr(rerr(name, 0.01))});
  }
  t.print();
  std::printf(
      "\nPaper shape (Tab. 13): both variants land close to but slightly "
      "worse than plain RandBET — the simple summed-gradient update is the "
      "right default.\n");
  return 0;
}
