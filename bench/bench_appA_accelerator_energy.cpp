// App. A: accelerator-level energy accounting — per-layer SRAM traffic and
// the whole-inference energy saving from low-voltage memory operation.
#include "accel/accelerator.h"
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("App. A", "accelerator SRAM traffic and inference energy");

  ModelConfig mc;
  auto model = build_model(mc);
  const auto profiles = profile_model(*model, {1, 3, 12, 12});

  TablePrinter t({"Layer", "weights", "MACs", "activations out"});
  for (const auto& p : profiles) {
    t.add_row({p.name, std::to_string(p.weights), std::to_string(p.macs),
               std::to_string(p.activations)});
  }
  t.print();

  AcceleratorConfig cfg;
  const EnergyBreakdown at_vmin = inference_energy(profiles, cfg, 1.0);
  std::printf("\nAt Vmin: %.0f weight accesses, %.0f activation accesses, "
              "memory share of total energy %.1f%%\n",
              at_vmin.weight_accesses, at_vmin.activation_accesses,
              100.0 * at_vmin.memory_energy / at_vmin.total());

  std::printf("\nWhole-inference energy vs memory voltage:\n");
  TablePrinter e({"V/Vmin", "p (%)", "memory energy", "total energy",
                  "total saving (%)"});
  for (double v : {1.0, 0.95, 0.90, 0.85, 0.81, 0.78}) {
    const EnergyBreakdown b = inference_energy(profiles, cfg, v);
    e.add_row({TablePrinter::fmt(v, 2),
               TablePrinter::fmt(100.0 * cfg.sram.bit_error_rate(v), 3),
               TablePrinter::fmt(b.memory_energy, 0),
               TablePrinter::fmt(b.total(), 0),
               TablePrinter::fmt(
                   100.0 * inference_energy_saving(profiles, cfg, v), 1)});
  }
  e.print();
  std::printf(
      "\nShape (App. A): memory dominates accelerator energy, so the Fig. 1 "
      "per-access saving translates into a large whole-inference saving — "
      "IF the DNN tolerates the bit error rate at that voltage (Fig. 2).\n");
  return 0;
}
