// Tab. 4: RandBET vs Clipping at 8 and 4 bits across bit error rates.
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 4", "random bit error training (RandBET), m=8 and m=4");

  const std::vector<std::string> m8{"c10_rquant", "c10_clip150",
                                    "c10_randbet015_p1"};
  const std::vector<std::string> m4{"c10_clip015_m4", "c10_randbet015_p1_m4"};
  std::vector<std::string> all = m8;
  all.insert(all.end(), m4.begin(), m4.end());
  zoo::ensure(all);

  const std::vector<double> grid{0.005, 0.01, 0.015};
  std::vector<std::string> headers{"Model", "Err (%)"};
  for (double p : grid) {
    headers.push_back("RErr p=" + TablePrinter::fmt(100 * p, 1) + "%");
  }
  TablePrinter t(headers);
  auto add = [&](const std::string& name) {
    std::vector<std::string> row{zoo::spec(name).label,
                                 TablePrinter::fmt(clean_err_pct(name), 2)};
    // One quantization + one fault sweep per model covers the whole p grid.
    for (const RobustResult& r : rerr_sweep(name, grid)) {
      row.push_back(fmt_rerr(r));
    }
    t.add_row(std::move(row));
  };
  for (const auto& name : m8) add(name);
  t.add_separator();
  for (const auto& name : m4) add(name);
  t.print();
  std::printf(
      "\nPaper shape: for p <= 0.5%% clipping is nearly enough; at p >= 1%% "
      "RandBET clearly wins, and the gap widens at 4 bit.\n");
  return 0;
}
