// Tab. 4: RandBET vs Clipping at 8 and 4 bits across bit error rates.
//
// Thin driver over the declarative experiment API — the same scenario ships
// as configs/tab4.json (`ber_run --table configs/tab4.json`) and both paths
// produce bit-identical numbers (tests/test_api.cpp).
#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Tab. 4", "random bit error training (RandBET), m=8 and m=4");

  const std::vector<std::string> m8{"c10_rquant", "c10_clip150",
                                    "c10_randbet015_p1"};
  const std::vector<std::string> m4{"c10_clip015_m4", "c10_randbet015_p1_m4"};
  std::vector<std::string> all = m8;
  all.insert(all.end(), m4.begin(), m4.end());
  zoo::ensure(all);

  const std::vector<double> grid{0.005, 0.01, 0.015};
  api::Experiment experiment("tab4");
  for (const auto& name : all) experiment.zoo(name);
  Json params = Json::object();
  params.set("seed_base", 1000);
  const api::Report report = experiment.fault("random", std::move(params))
                                 .rate_grid(grid)
                                 .run();

  std::vector<std::string> headers{"Model", "Err (%)"};
  for (double p : grid) {
    headers.push_back("RErr p=" + TablePrinter::fmt(100 * p, 1) + "%");
  }
  TablePrinter t(headers);
  for (std::size_t i = 0; i < report.models.size(); ++i) {
    if (i == m8.size()) t.add_separator();
    const api::ModelReport& m = report.models[i];
    std::vector<std::string> row{m.label,
                                 TablePrinter::fmt(100.0 * m.clean_err, 2)};
    for (const api::ReportPoint& pt : m.points) {
      row.push_back(fmt_rerr(pt.result));
    }
    t.add_row(std::move(row));
  }
  t.print();
  std::printf(
      "\nPaper shape: for p <= 0.5%% clipping is nearly enough; at p >= 1%% "
      "RandBET clearly wins, and the gap widens at 4 bit.\n");
  return 0;
}
