// Fig. 4: structure of bit-error-induced weight perturbations under the
// different fixed-point quantization schemes (original vs perturbed weights
// at p = 2.5%). We summarize the scatter plots as error statistics.
#include <cmath>

#include "bench_util.h"

int main() {
  using namespace ber;
  using namespace ber::bench;
  banner("Fig. 4", "weight error structure per quantization scheme, p=2.5%");

  zoo::ensure({"c10_rquant", "c10_clip100"});

  struct Case {
    std::string label;
    std::string model;
    QuantScheme scheme;
  };
  const std::vector<Case> cases{
      {"Global, qmax=1, m=8", "c10_rquant", QuantScheme::global_symmetric(8)},
      {"Per-layer (=Normal), m=8", "c10_rquant", QuantScheme::normal(8)},
      {"+Asymmetric (unsigned, round), m=8", "c10_rquant",
       QuantScheme::rquant(8)},
      {"+Clipping 0.1, m=4", "c10_clip100", QuantScheme::rquant(4)}};

  TablePrinter t({"Scheme", "mean |dw|", "max |dw|", "rel. |dw| (of range)",
                  "weights changed (%)"});
  for (const Case& c : cases) {
    Sequential& model = zoo::get(c.model);
    NetQuantizer quantizer(c.scheme);
    const auto params = model.params();
    NetSnapshot clean = quantizer.quantize(params);
    NetSnapshot pert = clean;
    BitErrorConfig cfg;
    cfg.p = 0.025;
    inject_random_bit_errors(pert, cfg, /*chip=*/77);

    double sum_abs = 0.0, max_abs = 0.0, sum_rel = 0.0;
    long changed = 0, total = 0;
    for (std::size_t i = 0; i < clean.tensors.size(); ++i) {
      std::vector<float> wc(clean.tensors[i].size()), wp(pert.tensors[i].size());
      dequantize(clean.tensors[i], wc);
      dequantize(pert.tensors[i], wp);
      const float range = std::max(
          1e-12f, clean.tensors[i].range.qmax - clean.tensors[i].range.qmin);
      for (std::size_t j = 0; j < wc.size(); ++j) {
        const double d = std::abs(wp[j] - wc[j]);
        sum_abs += d;
        sum_rel += d / range;
        max_abs = std::max(max_abs, d);
        if (d > 0) ++changed;
        ++total;
      }
    }
    t.add_row({c.label, TablePrinter::fmt(sum_abs / total, 5),
               TablePrinter::fmt(max_abs, 3),
               TablePrinter::fmt(sum_rel / total, 5),
               TablePrinter::fmt(100.0 * changed / total, 1)});
  }
  t.print();
  std::printf(
      "\nPaper shape: global quantization has the largest absolute errors "
      "(MSB flip ~ qmax over the whole net); per-layer shrinks them; "
      "clipping shrinks absolute but NOT relative errors (the scale "
      "argument of Sec. 4.2).\n");
  return 0;
}
