// ber_data: pack datasets into BERS shards, inspect and verify them.
//
//   ber_data pack --source synthetic --out DIR [--name c10|mnist|c100]
//                 [--n-train N] [--n-test N] [--seed S]
//   ber_data pack --source idx|cifar10 --in SRCDIR --out DIR
//                 [--n-train N] [--n-test N]
//   ber_data info SHARD.bers [...]        # header peek, JSON on stdout
//   ber_data verify SHARD.bers [...]      # mmap + full checksum check
//
// pack writes DIR/train.bers and DIR/test.bers through the same
// data::load_split funnel the Runner uses, so a packed shard replays the
// exact records the eager path would load (CI packs a synthetic shard and
// gates on the shard-sourced run matching). info prints the validated
// header without touching the payload; verify maps the whole file and
// recomputes the checksum, exiting 1 on the first bad shard.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "ber.h"

namespace {

using namespace ber;

int usage() {
  std::fprintf(
      stderr,
      "usage: ber_data pack --source synthetic --out DIR [--name PRESET]\n"
      "                     [--n-train N] [--n-test N] [--seed S]\n"
      "       ber_data pack --source idx|cifar10 --in SRCDIR --out DIR\n"
      "                     [--n-train N] [--n-test N]\n"
      "       ber_data info SHARD.bers [...]\n"
      "       ber_data verify SHARD.bers [...]\n");
  return 2;
}

Json header_json(const data::ShardHeader& h) {
  Json j = Json::object();
  j.set("version", static_cast<double>(data::kShardVersion));
  j.set("count", static_cast<double>(h.count));
  j.set("channels", static_cast<double>(h.channels));
  j.set("height", static_cast<double>(h.height));
  j.set("width", static_cast<double>(h.width));
  j.set("num_classes", static_cast<double>(h.num_classes));
  j.set("record_stride_bytes", static_cast<double>(h.record_stride()));
  return j;
}

int cmd_pack(const std::vector<std::string>& args) {
  data::SourceSpec src;
  std::string in_dir, out_dir, name;
  src.source.clear();
  long n_train = -1, n_test = -1, seed = -1;
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    const auto value = [&]() -> std::string {
      if (++i >= args.size()) throw std::invalid_argument(arg + ": missing value");
      return args[i];
    };
    if (arg == "--source") src.source = value();
    else if (arg == "--in") in_dir = value();
    else if (arg == "--out") out_dir = value();
    else if (arg == "--name") name = value();
    else if (arg == "--n-train") n_train = std::stol(value());
    else if (arg == "--n-test") n_test = std::stol(value());
    else if (arg == "--seed") seed = std::stol(value());
    else throw std::invalid_argument("unknown pack option " + arg);
  }
  if (src.source.empty() || out_dir.empty()) {
    throw std::invalid_argument("pack needs --source and --out");
  }
  data::check_dataset_source(src.source, "ber_data pack");
  if (src.source == "shard") {
    throw std::invalid_argument("pack: shards are the output, not a source");
  }
  if (src.source == "synthetic") {
    src.synthetic = name.empty() ? SyntheticConfig::cifar10()
                                 : api::dataset_by_name(name);
    if (seed >= 0) src.synthetic.seed = static_cast<std::uint64_t>(seed);
  } else {
    if (in_dir.empty()) {
      throw std::invalid_argument("pack: file-backed sources need --in SRCDIR");
    }
    src.path = in_dir;
    src.synthetic = data::source_geometry(src.source);
  }
  // For file-backed sources these act as per-split record caps (0 = all).
  if (n_train >= 0) src.synthetic.n_train = static_cast<int>(n_train);
  if (n_test >= 0) src.synthetic.n_test = static_cast<int>(n_test);

  ensure_dir(out_dir);
  for (const bool train : {true, false}) {
    const Dataset d = data::load_split(src, train);
    const std::string path = out_dir + (train ? "/train.bers" : "/test.bers");
    data::write_shard(path, d);
    const data::ShardHeader h = data::read_shard_header(path);
    Json j = header_json(h);
    j.set("path", path);
    std::printf("%s\n", j.dump(2).c_str());
  }
  return 0;
}

int cmd_info(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    Json j = header_json(data::read_shard_header(path));
    j.set("path", path);
    std::printf("%s\n", j.dump(2).c_str());
  }
  return 0;
}

int cmd_verify(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    data::ShardReader reader(path, /*verify_checksum=*/true);
    std::fprintf(stderr, "[ber_data] %s: ok (%ld records)\n", path.c_str(),
                 reader.size());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string cmd = argv[1];
  std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "pack") return cmd_pack(args);
    if (cmd == "info") {
      if (args.empty()) return usage();
      return cmd_info(args);
    }
    if (cmd == "verify") {
      if (args.empty()) return usage();
      return cmd_verify(args);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ber_data: %s\n", e.what());
    return 1;
  }
  return usage();
}
