// ber_run: execute any declarative experiment spec.
//
//   ber_run configs/tab4.json                # run, report JSON on stdout
//   ber_run --table configs/tab4.json       # + paper-style console table
//   ber_run --out report.json configs/...   # write the report to a file
//   ber_run --print-spec configs/...        # parse+validate+echo, no run
//   ber_run --list                          # registry names a spec can use
//   ber_run --list datasets                 # dataset presets + source types
//                                           # + expected file layouts
//   ber_run --metrics-out m.json configs/... # obs registry snapshot to file
//   ber_run --trace-out t.json configs/...   # chrome://tracing trace to file
//   ber_run --forensics-out f.json configs/... # fault-forensics sections
//                                              # (eval.forensics) to a file
//   ber_run --baseline old.json configs/x.json  # run + regression-diff
//   ber_run --baseline old.json --report new.json  # diff two reports, no run
//
// --baseline compares the fresh report against a previous run of the SAME
// spec (api/report_diff.h): incomparable specs or hard regressions (SLO
// attainment drop, new shed, a latency quantile crossing the SLO bound)
// exit 3 — the CI gate. With --report the diff runs on an existing report
// file instead of executing the spec.
//
// Multiple spec files run in order; with --out, report files are suffixed
// by the experiment name when more than one spec is given. Robustness
// results are bit-identical to the historical bench binaries for the same
// scenario (the tab4 config reproduces bench_tab4_randbet exactly — pinned
// in tests/test_api.cpp).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "ber.h"

namespace {

using namespace ber;

int usage() {
  std::fprintf(stderr,
               "usage: ber_run [--out FILE] [--metrics-out FILE] "
               "[--trace-out FILE] [--forensics-out FILE] [--baseline FILE] "
               "[--table] [--print-spec] SPEC.json [SPEC.json ...]\n"
               "       ber_run --baseline FILE --report REPORT.json\n"
               "       ber_run --list [datasets]\n");
  return 2;
}

// Diff a report against the baseline file: prints the verdict, writes the
// structured diff next to stderr diagnostics. 0 = pass, 3 = regression or
// incomparable (distinct from 1 = execution error, 2 = usage).
int run_baseline_diff(const std::string& baseline_path, const Json& current) {
  Json baseline;
  try {
    baseline = Json::parse_file(baseline_path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ber_run: %s: %s\n", baseline_path.c_str(), e.what());
    return 1;
  }
  api::DiffResult diff;
  try {
    diff = api::diff_reports(baseline, current);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "ber_run: baseline diff: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "[ber_run] %s", diff.summary().c_str());
  std::printf("%s\n", diff.to_json().dump(2).c_str());
  return diff.ok() ? 0 : 3;
}

// Dataset listing: registry preset names alongside the source types a
// spec's data.source accepts and the on-disk layout each source expects.
Json dataset_listing() {
  Json j = Json::object();
  Json presets = Json::array();
  for (const auto& n : api::dataset_names()) presets.push_back(n);
  j.set("datasets", presets);
  Json sources = Json::array();
  for (const auto& n : data::dataset_source_names()) sources.push_back(n);
  j.set("dataset_sources", sources);
  j.set("dataset_source_layouts", data::source_layouts());
  return j;
}

void list_registries(const std::string& topic) {
  if (topic == "datasets") {
    std::printf("%s\n", dataset_listing().dump(2).c_str());
    return;
  }
  Json j = Json::object();
  Json faults = Json::array();
  for (const auto& n : api::fault_models().names()) faults.push_back(n);
  j.set("fault_models", faults);
  Json backends = Json::array();
  for (const auto& n : kernels::backend_names()) backends.push_back(n);
  j.set("backends", backends);
  Json zoo_models = Json::array();
  for (const auto& s : zoo::all_specs()) zoo_models.push_back(s.name);
  j.set("zoo_models", zoo_models);
  const auto names_json = [](const std::vector<std::string>& names) {
    Json arr = Json::array();
    for (const std::string& n : names) arr.push_back(n);
    return arr;
  };
  j.set("archs", names_json(api::arch_names()));
  j.set("norms", names_json(api::norm_names()));
  j.set("datasets", names_json(api::dataset_names()));
  j.set("dataset_sources", names_json(data::dataset_source_names()));
  j.set("quant_schemes", names_json(api::quant_scheme_names()));
  j.set("training_methods", names_json(api::method_names()));
  // The fault models eval.forensics can instrument: code-space injectors
  // only (spec validation rejects float-space linf and SECDED-codeword ecc).
  Json fx = Json::array();
  for (const auto& n : api::fault_models().names()) {
    if (n != "ecc" && n != "linf") fx.push_back(n);
  }
  j.set("forensics_fault_models", fx);
  std::printf("%s\n", j.dump(2).c_str());
}

// Paper-style console table of a robustness report (one row per model).
void print_table(const api::Report& report) {
  if (report.spec.kind != "robustness" || report.models.empty()) return;
  const api::ModelReport& first = report.models.front();
  std::vector<std::string> headers{"Model"};
  if (first.clean_err >= 0.0) headers.push_back("Err (%)");
  for (const api::ReportPoint& pt : first.points) {
    headers.push_back(first.axis.empty()
                          ? "RErr"
                          : first.axis + "=" + TablePrinter::fmt(pt.x, 4));
  }
  TablePrinter t(headers);
  for (const api::ModelReport& m : report.models) {
    std::vector<std::string> row{m.label};
    if (m.clean_err >= 0.0) {
      row.push_back(TablePrinter::fmt(100.0 * m.clean_err, 2));
    }
    for (const api::ReportPoint& pt : m.points) {
      row.push_back(TablePrinter::fmt_pm(100.0 * pt.result.mean_rerr,
                                         100.0 * pt.result.std_rerr));
    }
    t.add_row(std::move(row));
  }
  t.print();
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path, metrics_path, trace_path, forensics_path;
  std::string baseline_path, report_path;
  bool table = false, print_spec = false;
  std::vector<std::string> files;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--list") {
      // Optional topic operand ("datasets" adds source file layouts).
      std::string topic;
      if (i + 1 < argc && argv[i + 1][0] != '-') topic = argv[++i];
      list_registries(topic);
      return 0;
    } else if (arg == "--table") {
      table = true;
    } else if (arg == "--print-spec") {
      print_spec = true;
    } else if (arg == "--out") {
      if (++i >= argc) return usage();
      out_path = argv[i];
    } else if (arg == "--metrics-out") {
      if (++i >= argc) return usage();
      metrics_path = argv[i];
    } else if (arg == "--trace-out") {
      if (++i >= argc) return usage();
      trace_path = argv[i];
    } else if (arg == "--forensics-out") {
      if (++i >= argc) return usage();
      forensics_path = argv[i];
    } else if (arg == "--baseline") {
      if (++i >= argc) return usage();
      baseline_path = argv[i];
    } else if (arg == "--report") {
      if (++i >= argc) return usage();
      report_path = argv[i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      files.push_back(arg);
    }
  }
  if (!report_path.empty()) {
    // Diff-only mode: compare an existing report against the baseline
    // without executing anything.
    if (baseline_path.empty() || !files.empty()) return usage();
    Json current;
    try {
      current = Json::parse_file(report_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ber_run: %s: %s\n", report_path.c_str(), e.what());
      return 1;
    }
    return run_baseline_diff(baseline_path, current);
  }
  if (files.empty()) return usage();
  // A baseline pins one spec; "which report regressed?" must be
  // unambiguous.
  if (!baseline_path.empty() && files.size() != 1) return usage();
  if (!trace_path.empty()) obs::start_tracing();

  std::set<std::string> written;
  Json last_report;  // for --baseline (single spec enforced above)
  Json forensics_experiments = Json::array();  // for --forensics-out
  for (const std::string& file : files) {
    api::ExperimentSpec spec;
    try {
      spec = api::ExperimentSpec::load(file);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ber_run: %s: %s\n", file.c_str(), e.what());
      return 1;
    }
    if (print_spec) {
      std::printf("%s\n", spec.to_json().dump(2).c_str());
      continue;
    }
    std::fprintf(stderr, "[ber_run] %s: experiment \"%s\" (%s, backend %s)\n",
                 file.c_str(), spec.name.c_str(), spec.kind.c_str(),
                 spec.backend.c_str());
    api::Report report;
    try {
      report = api::Runner(spec).run();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ber_run: %s: %s\n", file.c_str(), e.what());
      return 1;
    }
    last_report = report.to_json();
    if (!forensics_path.empty()) {
      Json models = Json::array();
      for (const api::ModelReport& m : report.models) {
        if (m.forensics.is_null()) continue;
        Json mj = Json::object();
        mj.set("name", m.name);
        mj.set("label", m.label);
        mj.set("forensics", m.forensics);
        models.push_back(std::move(mj));
      }
      Json fj = Json::object();
      fj.set("experiment", spec.name);
      fj.set("models", std::move(models));
      forensics_experiments.push_back(std::move(fj));
    }
    const std::string text = last_report.dump(2);
    if (out_path.empty()) {
      std::printf("%s\n", text.c_str());
    } else {
      std::string path = out_path;
      if (files.size() > 1) {
        const std::size_t dot = path.rfind(".json");
        const std::string stem =
            dot == std::string::npos ? path : path.substr(0, dot);
        path = stem + "_" + spec.name + ".json";
        // Two specs may share an experiment name — never clobber an
        // earlier report silently.
        int n = 2;
        while (written.count(path) != 0) {
          path = stem + "_" + spec.name + "_" + std::to_string(n++) + ".json";
        }
      }
      written.insert(path);
      std::ofstream out(path, std::ios::binary);
      if (!out) {
        std::fprintf(stderr, "ber_run: cannot write %s\n", path.c_str());
        return 1;
      }
      out << text << "\n";
      std::fprintf(stderr, "[ber_run] report written to %s\n", path.c_str());
    }
    if (table) print_table(report);
  }
  if (!forensics_path.empty() && !print_spec) {
    Json fj = Json::object();
    fj.set("experiments", std::move(forensics_experiments));
    std::ofstream out(forensics_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "ber_run: cannot write %s\n", forensics_path.c_str());
      return 1;
    }
    out << fj.dump(2) << "\n";
    std::fprintf(stderr, "[ber_run] forensics written to %s\n",
                 forensics_path.c_str());
  }
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "ber_run: cannot write %s\n", metrics_path.c_str());
      return 1;
    }
    out << obs::registry().to_json().dump(2) << "\n";
    std::fprintf(stderr, "[ber_run] metrics written to %s\n",
                 metrics_path.c_str());
  }
  if (!trace_path.empty()) {
    obs::stop_tracing();
    try {
      obs::write_trace(trace_path);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ber_run: %s\n", e.what());
      return 1;
    }
    std::fprintf(stderr, "[ber_run] trace written to %s\n", trace_path.c_str());
  }
  if (!baseline_path.empty() && !print_spec) {
    return run_baseline_diff(baseline_path, last_report);
  }
  return 0;
}
